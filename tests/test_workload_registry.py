"""Unit tests for the Table 4 benchmark registry."""

import pytest

from repro.config import GPUConfig
from repro.errors import WorkloadError
from repro.units import MS, US
from repro.workloads.registry import (BENCHMARK_ORDER, BENCHMARKS,
                                      FEW_KERNEL_BENCHMARKS,
                                      MANY_KERNEL_BENCHMARKS, RATE_LEVELS,
                                      benchmark_spec, build_workload)

GPU = GPUConfig()

#: Table 4 rows: benchmark -> (deadline, high, medium, low).
TABLE4 = {
    "LSTM": (7 * MS, 8000, 5000, 3000),
    "GRU": (7 * MS, 8000, 5000, 3000),
    "VAN": (7 * MS, 8000, 5000, 3000),
    "HYBRID": (7 * MS, 8000, 5000, 3000),
    "IPV6": (40 * US, 64000, 32000, 16000),
    "CUCKOO": (600 * US, 8000, 5000, 3000),
    "GMM": (3 * MS, 32000, 16000, 8000),
    "STEM": (300 * US, 64000, 32000, 16000),
}


class TestTable4:
    def test_all_eight_benchmarks_present(self):
        assert set(BENCHMARK_ORDER) == set(TABLE4)

    @pytest.mark.parametrize("name", list(TABLE4))
    def test_deadlines_match_table4(self, name):
        assert BENCHMARKS[name].deadline == TABLE4[name][0]

    @pytest.mark.parametrize("name", list(TABLE4))
    def test_rates_match_table4(self, name):
        _, high, medium, low = TABLE4[name]
        spec = BENCHMARKS[name]
        assert spec.rate("high") == high
        assert spec.rate("medium") == medium
        assert spec.rate("low") == low

    def test_kind_split_matches_figure1(self):
        assert MANY_KERNEL_BENCHMARKS == ("LSTM", "GRU", "VAN", "HYBRID")
        assert FEW_KERNEL_BENCHMARKS == ("IPV6", "CUCKOO", "GMM", "STEM")

    def test_rate_levels(self):
        assert RATE_LEVELS == ("high", "medium", "low")


class TestBuildWorkload:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("RESNET")

    def test_unknown_rate_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("LSTM", rate_level="extreme")

    def test_benchmark_spec_lookup(self):
        assert benchmark_spec("GMM").name == "GMM"
        with pytest.raises(WorkloadError):
            benchmark_spec("nope")

    @pytest.mark.parametrize("name", list(TABLE4))
    def test_jobs_carry_benchmark_deadline(self, name):
        jobs = build_workload(name, num_jobs=8, gpu=GPU)
        assert len(jobs) == 8
        assert all(job.deadline == TABLE4[name][0] for job in jobs)
        assert all(job.benchmark == name for job in jobs)

    def test_few_kernel_jobs_are_single_kernel(self):
        for name in FEW_KERNEL_BENCHMARKS:
            jobs = build_workload(name, num_jobs=4, gpu=GPU)
            assert all(job.num_kernels == 1 for job in jobs)

    def test_many_kernel_jobs_have_many_kernels(self):
        for name in MANY_KERNEL_BENCHMARKS:
            jobs = build_workload(name, num_jobs=4, gpu=GPU)
            assert all(job.num_kernels > 10 for job in jobs)

    def test_higher_rate_means_denser_arrivals(self):
        high = build_workload("IPV6", "high", num_jobs=64, gpu=GPU)
        low = build_workload("IPV6", "low", num_jobs=64, gpu=GPU)
        assert high[-1].arrival < low[-1].arrival

    def test_job_ids_unique_and_ordered(self):
        jobs = build_workload("STEM", num_jobs=16, gpu=GPU)
        assert [job.job_id for job in jobs] == list(range(16))
