"""Unit tests for compute queues and the queue pool."""

import pytest

from repro.errors import SimulationError
from repro.sim.queues import ComputeQueue, QueuePool

from conftest import make_descriptor, make_job


class TestComputeQueue:
    def test_bind_and_release(self):
        queue = ComputeQueue(0)
        job = make_job()
        assert queue.is_free
        queue.bind(job)
        assert not queue.is_free
        queue.release()
        assert queue.is_free

    def test_double_bind_rejected(self):
        queue = ComputeQueue(0)
        queue.bind(make_job(job_id=1))
        with pytest.raises(SimulationError):
            queue.bind(make_job(job_id=2))

    def test_head_kernel_none_when_free(self):
        assert ComputeQueue(0).head_kernel() is None

    def test_head_kernel_respects_release_marker(self):
        queue = ComputeQueue(0)
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        queue.bind(job)
        assert queue.head_kernel() is None  # nothing released yet
        job.released_kernels = 1
        assert queue.head_kernel() is job.kernels[0]

    def test_head_kernel_respects_dependencies(self):
        queue = ComputeQueue(0)
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=1),
                                    make_descriptor(name="b", num_wgs=1)])
        job.released_kernels = 2
        queue.bind(job)
        first = queue.head_kernel()
        assert first.name == "a"
        first.mark_active(0)
        # Active but unfinished predecessor: successor not yet visible.
        assert queue.head_kernel() is None
        first.note_wg_issued(0)
        first.note_wg_completed(1)
        assert queue.head_kernel().name == "b"


class TestQueuePool:
    def test_binds_up_to_capacity(self):
        pool = QueuePool(2)
        assert pool.try_bind(make_job(job_id=0)) is not None
        assert pool.try_bind(make_job(job_id=1)) is not None
        assert pool.num_free == 0

    def test_overflow_goes_to_backlog(self):
        pool = QueuePool(1)
        pool.try_bind(make_job(job_id=0))
        overflow = make_job(job_id=1)
        assert pool.try_bind(overflow) is None
        assert list(pool.backlog) == [overflow]

    def test_release_returns_backlogged_job(self):
        pool = QueuePool(1)
        first = make_job(job_id=0)
        second = make_job(job_id=1)
        pool.try_bind(first)
        pool.try_bind(second)
        follower = pool.release(first)
        assert follower is second
        assert pool.num_free == 1

    def test_release_unknown_job_rejected(self):
        pool = QueuePool(1)
        with pytest.raises(SimulationError):
            pool.release(make_job())

    def test_queue_of(self):
        pool = QueuePool(4)
        job = make_job()
        queue = pool.try_bind(job)
        assert pool.queue_of(job) is queue

    def test_live_jobs_in_queue_order(self):
        pool = QueuePool(4)
        jobs = [make_job(job_id=i) for i in range(3)]
        for job in jobs:
            pool.try_bind(job)
        assert pool.live_jobs() == jobs
        pool.release(jobs[1])
        assert pool.live_jobs() == [jobs[0], jobs[2]]

    def test_queue_reuse_after_release(self):
        pool = QueuePool(1)
        first = make_job(job_id=0)
        pool.try_bind(first)
        pool.release(first)
        second = make_job(job_id=1)
        queue = pool.try_bind(second)
        assert queue is not None
        assert queue.job is second

    def test_zero_queues_rejected(self):
        with pytest.raises(SimulationError):
            QueuePool(0)
