"""CLI contract for ``--validate``: exit codes, stderr context, bundles.

An injected invariant violation must surface as a clean structured error
(exit code 3, no traceback), and with ``--emit-telemetry`` the checker's
summary must land in the bundle directory even though the run died before
metrics were finalized.
"""

import json
import os

import pytest

from repro.cli import main
from repro.validation import InvariantChecker, InvariantViolation


ARGS = ["--benchmark", "LSTM", "--rate", "low", "--jobs", "6"]


def inject_violation(monkeypatch):
    """Make the first engine-hook call fail like a real violation."""

    def explode(self, event, now):
        self._fail("clock_monotonic", "injected for the CLI test",
                   {"event_time": event.when, "clock": now,
                    "injected": True})

    monkeypatch.setattr(InvariantChecker, "on_event", explode)


class TestValidateCleanRun:
    def test_exit_zero_with_verdict_line(self, capsys):
        assert main(ARGS + ["--validate"]) == 0
        out = capsys.readouterr().out
        assert "validation:" in out
        assert "0 violations" in out
        assert "0 oracle failures" in out

    def test_report_mode_embeds_validation_section(self, capsys):
        assert main(["report"] + ARGS + ["--validate"]) == 0
        out = capsys.readouterr().out
        assert "## Validation" in out
        assert "analytic oracles: all passed" in out

    def test_bundle_report_carries_validation(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(ARGS + ["--validate",
                            "--emit-telemetry", str(bundle)]) == 0
        report = json.loads((bundle / "report.json").read_text())
        assert report["validation"]["violations"] == []
        assert report["validation"]["total_checks"] > 0
        # No violations -> no separate validation.json in the bundle.
        assert not (bundle / "validation.json").exists()

    def test_without_flag_no_validation_output(self, capsys):
        assert main(ARGS) == 0
        assert "validation:" not in capsys.readouterr().out


class TestValidateViolation:
    def test_exit_three_with_structured_context(self, monkeypatch, capsys):
        inject_violation(monkeypatch)
        assert main(ARGS + ["--validate"]) == 3
        err = capsys.readouterr().err
        assert "invariant: clock_monotonic" in err
        assert "sim time:" in err
        assert "injected: True" in err
        assert "Traceback" not in err

    def test_violation_summary_flushed_into_bundle(self, monkeypatch,
                                                   tmp_path, capsys):
        inject_violation(monkeypatch)
        bundle = tmp_path / "bundle"
        assert main(ARGS + ["--validate",
                            "--emit-telemetry", str(bundle)]) == 3
        summary = json.loads((bundle / "validation.json").read_text())
        assert len(summary["violations"]) == 1
        record = summary["violations"][0]
        assert record["invariant"] == "clock_monotonic"
        assert record["context"]["injected"] is True
        assert "wrote violation summary" in capsys.readouterr().err

    def test_no_bundle_flag_writes_nothing(self, monkeypatch, tmp_path,
                                           capsys):
        inject_violation(monkeypatch)
        os_listdir_before = set(os.listdir(tmp_path))
        assert main(ARGS + ["--validate"]) == 3
        assert set(os.listdir(tmp_path)) == os_listdir_before

    def test_workload_file_path_also_exits_three(self, monkeypatch,
                                                 tmp_path, capsys):
        workload = tmp_path / "w.json"
        assert main(ARGS + ["--save-workload", str(workload)]) == 0
        inject_violation(monkeypatch)
        assert main(["--workload", str(workload), "--validate"]) == 3
        err = capsys.readouterr().err
        assert "invariant: clock_monotonic" in err


class TestModeErrors:
    def test_save_workload_rejects_validate(self, tmp_path, capsys):
        code = main(ARGS + ["--validate",
                            "--save-workload", str(tmp_path / "w.json")])
        assert code == 2
        assert "--validate" in capsys.readouterr().out
        assert not (tmp_path / "w.json").exists()


class TestCompareValidate:
    def test_compare_runs_each_scheduler_validated(self, capsys):
        code = main(ARGS + ["--validate", "--compare", "LAX", "RR"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LAX" in out and "RR" in out
