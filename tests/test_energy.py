"""Unit tests for the energy meter."""

import pytest

from repro.config import EnergyConfig
from repro.sim.energy import EnergyMeter
from repro.units import SEC


class TestEnergyMeter:
    def test_starts_at_zero(self):
        meter = EnergyMeter(EnergyConfig())
        assert meter.total_joules == 0.0

    def test_dynamic_energy_from_lane_time(self):
        config = EnergyConfig(dynamic_watts_per_lane=4.0, static_watts=0.0)
        meter = EnergyMeter(config)
        meter.add_lane_time(SEC)  # one lane busy for one second
        assert meter.dynamic_joules == pytest.approx(4.0)

    def test_static_energy_from_makespan(self):
        config = EnergyConfig(dynamic_watts_per_lane=0.0, static_watts=35.0)
        meter = EnergyMeter(config)
        meter.set_makespan(SEC // 2)
        assert meter.static_joules == pytest.approx(17.5)

    def test_preemption_energy(self):
        config = EnergyConfig(preemption_joules_per_byte=2e-9)
        meter = EnergyMeter(config)
        meter.add_context_traffic(1_000_000)
        assert meter.preemption_joules == pytest.approx(2e-3)

    def test_total_is_sum_of_components(self):
        meter = EnergyMeter(EnergyConfig())
        meter.add_lane_time(SEC)
        meter.add_context_traffic(1024)
        meter.set_makespan(SEC)
        expected = (meter.dynamic_joules + meter.static_joules
                    + meter.preemption_joules)
        assert meter.total_joules == pytest.approx(expected)

    def test_lane_time_accumulates(self):
        meter = EnergyMeter(EnergyConfig())
        meter.add_lane_time(100)
        meter.add_lane_time(200)
        assert meter.busy_lane_seconds == pytest.approx(300 / SEC)

    def test_negative_inputs_rejected(self):
        meter = EnergyMeter(EnergyConfig())
        with pytest.raises(ValueError):
            meter.add_lane_time(-1)
        with pytest.raises(ValueError):
            meter.add_context_traffic(-1)
        with pytest.raises(ValueError):
            meter.set_makespan(-1)
