"""Unit tests for the event-trace subsystem."""

import json

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.trace import (TraceRecorder, occupancy_timeline,
                             render_occupancy)
from repro.units import MS, US

from conftest import make_descriptor, make_job


def traced_run(jobs, scheduler="RR", wg_events=False):
    trace = TraceRecorder(wg_events=wg_events)
    system = GPUSystem(make_scheduler(scheduler), SimConfig(), trace=trace)
    system.submit_workload(jobs)
    metrics = system.run()
    return trace, metrics


class TestRecorder:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder().emit(0, "job_teleport")

    def test_wg_events_suppressed_by_default(self):
        recorder = TraceRecorder()
        recorder.emit(0, "wg_issue", job_id=1)
        recorder.emit(0, "job_arrival", job_id=1)
        assert recorder.counts() == {"job_arrival": 1}

    def test_lifecycle_events_recorded(self):
        jobs = [make_job(job_id=i, deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=2,
                                                      wg_work=20 * US)])
                for i in range(3)]
        trace, _ = traced_run(jobs)
        counts = trace.counts()
        assert counts["job_arrival"] == 3
        assert counts["job_admitted"] == 3
        assert counts["job_complete"] == 3
        assert counts["kernel_complete"] == 3

    def test_rejections_recorded(self):
        jobs = [make_job(job_id=i, arrival=(i + 1) * US, deadline=50 * US,
                         descriptors=[make_descriptor(num_wgs=32,
                                                      wg_work=25 * US)])
                for i in range(6)]
        trace, metrics = traced_run(jobs, scheduler="LAX")
        assert len(trace.of_kind("job_rejected")) == metrics.jobs_rejected > 0

    def test_wg_level_trace(self):
        jobs = [make_job(descriptors=[make_descriptor(num_wgs=4,
                                                      wg_work=20 * US)])]
        trace, _ = traced_run(jobs, wg_events=True)
        assert len(trace.of_kind("wg_issue")) == 4
        assert len(trace.of_kind("wg_complete")) == 4

    def test_preemption_recorded(self):
        hog = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(name="hog", num_wgs=32, wg_work=5 * MS,
                            threads_per_wg=640)])
        sprinter = make_job(job_id=1, arrival=10 * US, deadline=100 * MS,
                            descriptors=[
            make_descriptor(name="spr", num_wgs=32, wg_work=50 * US,
                            threads_per_wg=640)])
        trace, _ = traced_run([hog, sprinter], scheduler="PREMA")
        preemptions = trace.of_kind("preemption")
        assert preemptions
        assert all(event.detail > 0 for event in preemptions)

    def test_job_timeline_ordered(self):
        jobs = [make_job(job_id=7, descriptors=[
            make_descriptor(num_wgs=1, wg_work=10 * US)])]
        trace, _ = traced_run(jobs)
        timeline = trace.job_timeline(7)
        kinds = [event.kind for event in timeline]
        assert kinds[0] == "job_arrival"
        assert kinds[-1] == "job_complete"
        times = [event.time for event in timeline]
        assert times == sorted(times)


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        jobs = [make_job(descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=10 * US)])]
        trace, _ = traced_run(jobs)
        path = tmp_path / "trace.jsonl"
        count = trace.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(trace.events)
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "job_arrival"

    def test_csv_export(self, tmp_path):
        jobs = [make_job(descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=10 * US)])]
        trace, _ = traced_run(jobs)
        path = tmp_path / "trace.csv"
        trace.to_csv(str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "time,kind,job_id,kernel,detail,cu,queue"
        assert len(lines) == len(trace.events) + 1


class TestOccupancy:
    def test_requires_wg_trace(self):
        with pytest.raises(SimulationError):
            occupancy_timeline(TraceRecorder(), bucket=10)

    def test_bucket_validation(self):
        with pytest.raises(SimulationError):
            occupancy_timeline(TraceRecorder(wg_events=True), bucket=0)

    def test_levels_match_residency(self):
        jobs = [make_job(descriptors=[make_descriptor(num_wgs=8,
                                                      wg_work=100 * US)])]
        trace, _ = traced_run(jobs, wg_events=True)
        timeline = occupancy_timeline(trace, bucket=20 * US)
        peak = max(level for _, level in timeline)
        assert peak == 8
        assert timeline[-1][1] == 0  # drained at the end

    def test_occupancy_never_negative(self):
        jobs = [make_job(job_id=i, arrival=(i + 1) * 30 * US,
                         deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=4,
                                                      wg_work=50 * US)])
                for i in range(5)]
        trace, _ = traced_run(jobs, wg_events=True)
        timeline = occupancy_timeline(trace, bucket=10 * US)
        assert all(level >= 0 for _, level in timeline)

    def test_render(self):
        jobs = [make_job(descriptors=[make_descriptor(num_wgs=4,
                                                      wg_work=50 * US)])]
        trace, _ = traced_run(jobs, wg_events=True)
        art = render_occupancy(occupancy_timeline(trace, bucket=20 * US))
        assert "#" in art

    def test_render_empty(self):
        assert render_occupancy([]) == "(empty trace)"

    def test_empty_trace_yields_single_zero_bucket(self):
        recorder = TraceRecorder(wg_events=True)
        assert occupancy_timeline(recorder, bucket=10) == [(0, 0)]

    def test_single_event_trace(self):
        recorder = TraceRecorder(wg_events=True)
        recorder.emit(5, "wg_issue", job_id=0)
        timeline = occupancy_timeline(recorder, bucket=10)
        assert timeline[0] == (0, 1)
        assert all(level == 1 for _, level in timeline)

    def test_event_on_bucket_boundary_lands_in_later_bucket(self):
        recorder = TraceRecorder(wg_events=True)
        # Issue exactly at the first boundary: the level at the END of
        # bucket [0, 10) is still 0; bucket [10, 20) sees the WG.
        recorder.emit(10, "wg_issue", job_id=0)
        recorder.emit(30, "wg_complete", job_id=0)
        timeline = dict(occupancy_timeline(recorder, bucket=10))
        assert timeline[0] == 0
        assert timeline[10] == 1
        assert timeline[20] == 1
        assert timeline[30] == 0

    def test_preemption_delta_reduces_level(self):
        recorder = TraceRecorder(wg_events=True)
        for _ in range(4):
            recorder.emit(1, "wg_issue", job_id=0, kernel="k")
        recorder.emit(15, "preemption", job_id=0, kernel="k", detail=3)
        recorder.emit(40, "wg_complete", job_id=0, kernel="k")
        timeline = dict(occupancy_timeline(recorder, bucket=10))
        assert timeline[0] == 4
        assert timeline[10] == 1   # 4 issued - 3 evicted
        assert timeline[40] == 0

    def test_zero_wg_preemption_is_a_noop(self):
        recorder = TraceRecorder(wg_events=True)
        recorder.emit(1, "wg_issue", job_id=0)
        recorder.emit(5, "preemption", job_id=0, detail=0)
        timeline = dict(occupancy_timeline(recorder, bucket=10))
        assert timeline[0] == 1

    def test_render_single_bucket(self):
        art = render_occupancy([(0, 3)], width=10)
        assert art.endswith("#" * 10)
