"""Tests for the live SLO monitor over windowed metrics."""

import io

import pytest

from repro.errors import TelemetryError
from repro.telemetry import TelemetryHub
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.slo import (SLOMonitor, ThresholdRule, p99_above,
                                 print_alert, reject_rate_above, slo_below)
from repro.telemetry.windows import WindowedMetrics, WindowStats
from repro.units import MS

W = 1 * MS


def _stats(index=0, slo=1.0, p99=None, reject=None, completions=1,
           missed=0):
    return WindowStats(index=index, start=index * W, end=(index + 1) * W,
                       completions=completions, deadline_missed=missed,
                       latency_p99=p99, slo_attainment=slo,
                       reject_rate=reject)


class TestPredicates:
    def test_slo_below(self):
        predicate = slo_below(0.9)
        assert predicate(_stats(slo=0.8))
        assert not predicate(_stats(slo=0.95))
        assert not predicate(_stats(slo=None))  # no sensitive jobs

    def test_p99_above(self):
        predicate = p99_above(5 * MS)
        assert predicate(_stats(p99=6 * MS))
        assert not predicate(_stats(p99=4 * MS))
        assert not predicate(_stats(p99=None))

    def test_reject_rate_above(self):
        predicate = reject_rate_above(0.25)
        assert predicate(_stats(reject=0.5))
        assert not predicate(_stats(reject=0.1))
        assert not predicate(_stats(reject=None))


class TestThresholdRules:
    def _monitor(self, **rule_kwargs):
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows)
        monitor.add_rule("low-slo", slo_below(0.9), **rule_kwargs)
        return monitor

    def test_fires_after_consecutive_windows(self):
        monitor = self._monitor(consecutive=3)
        for index in range(3):
            monitor.on_window(_stats(index=index, slo=0.5))
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert["rule"] == "low-slo"
        assert alert["window_index"] == 2
        assert alert["streak"] == 3

    def test_does_not_fire_below_streak(self):
        monitor = self._monitor(consecutive=3)
        monitor.on_window(_stats(index=0, slo=0.5))
        monitor.on_window(_stats(index=1, slo=0.95))  # streak broken
        monitor.on_window(_stats(index=2, slo=0.5))
        assert monitor.alerts == []

    def test_fires_once_per_episode_then_rearms(self):
        monitor = self._monitor(consecutive=2)
        for index in range(4):  # one long episode
            monitor.on_window(_stats(index=index, slo=0.5))
        assert len(monitor.alerts) == 1
        monitor.on_window(_stats(index=4, slo=1.0))  # clean: re-arm
        monitor.on_window(_stats(index=5, slo=0.5))
        monitor.on_window(_stats(index=6, slo=0.5))
        assert len(monitor.alerts) == 2

    def test_callback_invoked_with_rule_and_stats(self):
        calls = []
        monitor = self._monitor(
            consecutive=1, callback=lambda name, s: calls.append((name, s)))
        monitor.on_window(_stats(slo=0.5))
        assert calls and calls[0][0] == "low-slo"
        assert calls[0][1].slo_attainment == 0.5

    def test_consecutive_must_be_positive(self):
        with pytest.raises(TelemetryError):
            ThresholdRule(name="bad", predicate=slo_below(0.5),
                          consecutive=0)


class TestRegistryInstruments:
    def test_window_gauges_and_counters(self):
        registry = MetricsRegistry(prefix="repro")
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows, registry=registry)
        monitor.on_window(_stats(index=3, slo=0.75, p99=2 * MS,
                                 completions=8, missed=2))
        text = registry.to_prometheus_text()
        assert "repro_window_index 3" in text
        assert "repro_window_slo_attainment 0.75" in text
        assert "repro_window_p99_latency_ms 2" in text
        assert "repro_windows_closed_total 1" in text
        assert "repro_window_completions_total 8" in text
        assert "repro_window_deadline_misses_total 2" in text

    def test_alert_counter_labelled_by_rule(self):
        registry = MetricsRegistry(prefix="repro")
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows, registry=registry)
        monitor.add_rule("low-slo", slo_below(0.9), consecutive=1)
        monitor.on_window(_stats(slo=0.5))
        assert 'repro_window_alerts_total{rule="low-slo"} 1' \
            in registry.to_prometheus_text()


class TestProgressLine:
    def test_line_written_per_window(self):
        stream = io.StringIO()
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows, stream=stream, label="cell")
        monitor.on_window(_stats(index=2, slo=0.5, p99=3 * MS))
        line = stream.getvalue().strip()
        assert line.startswith("[cell] w=2 ")
        assert "p99=3.000ms" in line
        assert "slo=0.500" in line

    def test_alert_suffix_when_rule_fired(self):
        stream = io.StringIO()
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows, stream=stream)
        monitor.add_rule("low-slo", slo_below(0.9), consecutive=1)
        monitor.on_window(_stats(slo=0.5))
        assert "ALERT x1" in stream.getvalue()

    def test_print_alert_helper(self):
        stream = io.StringIO()
        print_alert("low-slo", _stats(index=4, slo=0.5, p99=2 * MS),
                    stream=stream)
        line = stream.getvalue()
        assert "SLO ALERT [low-slo]" in line
        assert "window 4" in line


class TestLiveWiring:
    def test_monitor_consumes_closing_windows(self):
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows)
        monitor.add_rule("low-slo", slo_below(0.9), consecutive=1)
        windows.on_complete(10, latency=5, sensitive=True,
                            met_deadline=False)
        windows.on_arrival(W + 1)  # closes window 0 -> monitor sees it
        assert monitor.last is not None
        assert monitor.last.index == 0
        assert len(monitor.alerts) == 1

    def test_snapshot_is_json_ready(self):
        windows = WindowedMetrics(W)
        monitor = SLOMonitor(windows)
        monitor.add_rule("low-slo", slo_below(0.9), consecutive=2)
        monitor.on_window(_stats(slo=0.5))
        snapshot = monitor.snapshot()
        assert snapshot["window_ticks"] == W
        assert snapshot["rules"][0]["streak"] == 1
        assert snapshot["alerts"] == []


class TestHubWiring:
    def test_hub_builds_windows_and_monitor(self):
        stream = io.StringIO()
        hub = TelemetryHub(window=W, slo_monitor=True, slo_stream=stream,
                           label="test")
        assert hub.windows is not None
        assert hub.monitor is not None
        assert hub.monitor.windows is hub.windows
        hub.windows.on_arrival(0)
        hub.windows.finalize(W)
        assert stream.getvalue().startswith("[test] w=0")

    def test_monitor_without_windows_rejected(self):
        with pytest.raises(TelemetryError, match="window"):
            TelemetryHub(slo_monitor=True)

    def test_default_hub_has_neither(self):
        hub = TelemetryHub()
        assert hub.windows is None
        assert hub.monitor is None
