"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import PeriodicTask, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [100]

    def test_arguments_are_passed(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, fired.append, "payload")
        sim.run()
        assert fired == ["payload"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_events_ordered_by_time(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(7, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert fired == [("outer", 10), ("inner", 15)]

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: sim.schedule(0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [10]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        handle = sim.schedule(2, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.schedule(99, lambda: None)
        assert sim.run() == 99

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, fired.append, "b")
        sim.run_until(15)
        assert fired == ["a"]
        assert sim.now == 15

    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(15, fired.append, "a")
        sim.run_until(15)
        assert fired == ["a"]

    def test_max_time_enforced(self):
        sim = Simulator(max_time=100)
        sim.schedule(200, lambda: None)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_fired_counter(self):
        sim = Simulator()
        for delay in (1, 2, 3):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.events_fired == 3


class TestPeriodicTask:
    def test_fires_until_inactive(self):
        sim = Simulator()
        state = {"budget": 3, "fired": 0}

        def tick():
            state["fired"] += 1
            state["budget"] -= 1

        task = PeriodicTask(sim, 10, tick, lambda: state["budget"] > 0)
        task.ensure_running()
        sim.run()
        assert state["fired"] == 3
        assert not task.running

    def test_does_not_start_when_inactive(self):
        sim = Simulator()
        task = PeriodicTask(sim, 10, lambda: None, lambda: False)
        task.ensure_running()
        assert not task.running
        assert sim.run() == 0

    def test_ensure_running_is_idempotent(self):
        sim = Simulator()
        fired = []
        active = {"on": True}

        def tick():
            fired.append(sim.now)
            active["on"] = False

        task = PeriodicTask(sim, 10, tick, lambda: active["on"])
        task.ensure_running()
        task.ensure_running()
        sim.run()
        assert fired == [10]

    def test_stop_cancels_pending_tick(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 10, lambda: fired.append(1), lambda: True)
        task.ensure_running()
        task.stop()
        sim.run()
        assert fired == []

    def test_restart_after_idle(self):
        sim = Simulator()
        fired = []
        budget = {"left": 2}

        def tick():
            fired.append(sim.now)
            budget["left"] -= 1

        task = PeriodicTask(sim, 10, tick, lambda: budget["left"] > 0)
        task.ensure_running()
        sim.run()
        assert fired == [10, 20]
        # Re-arm after going idle: the loop picks up from the current time.
        budget["left"] = 1
        task.ensure_running()
        sim.run()
        assert fired == [10, 20, 30]

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0, lambda: None, lambda: True)


class TestPeriodicTaskEdges:
    """Lifecycle edge cases: stop/restart, lazy re-arm, tick accounting."""

    def test_restart_after_stop(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 10, lambda: fired.append(sim.now),
                            lambda: len(fired) < 3)
        task.ensure_running()
        task.stop()
        assert not task.running
        # A stopped task must come back cleanly at the *current* time base,
        # not resume the cancelled schedule.
        sim.run_until(25)
        task.ensure_running()
        assert task.running
        sim.run()
        assert fired == [35, 45, 55]

    def test_stop_is_idempotent(self):
        sim = Simulator()
        task = PeriodicTask(sim, 10, lambda: None, lambda: True)
        task.stop()        # never started
        task.ensure_running()
        task.stop()
        task.stop()        # second stop is a no-op
        assert not task.running
        assert sim.run() == 0

    def test_running_transitions_across_lifecycle(self):
        sim = Simulator()
        seen = []
        active = {"on": True}

        def tick():
            seen.append(task.running)  # handle is cleared while firing
            active["on"] = False

        task = PeriodicTask(sim, 10, tick, lambda: active["on"])
        assert not task.running
        task.ensure_running()
        assert task.running
        sim.run()
        assert seen == [False]
        assert not task.running        # predicate went false: loop parked

    def test_lazy_rearm_does_not_schedule_while_inactive(self):
        sim = Simulator()
        active = {"on": False}
        task = PeriodicTask(sim, 10, lambda: None, lambda: active["on"])
        task.ensure_running()
        assert sim.pending_events == 0  # nothing armed while idle
        active["on"] = True
        task.ensure_running()
        assert sim.pending_events == 1

    def test_tick_accounting_fired_elided_restarts(self):
        sim = Simulator()
        state = {"budget": 2, "live": True}

        def tick():
            state["budget"] -= 1
            if state["budget"] == 0:
                # Keep the re-arm alive but make the *next* tick a no-op:
                # the predicate flips between scheduling and firing.
                sim.schedule(5, lambda: state.update(live=False))

        task = PeriodicTask(sim, 10, tick,
                            lambda: state["live"] and state["budget"] >= 0)
        task.ensure_running()
        sim.run()
        assert task.ticks_fired == 2    # t=10, t=20
        assert task.ticks_elided == 1   # t=30 fired dead: predicate false
        assert task.restarts == 1
        # Re-arm from idle: restart count grows, totals carry on.
        state.update(live=True, budget=1)
        task.ensure_running()
        sim.run()
        assert task.restarts == 2
        assert task.ticks_fired == 3
        assert task.ticks_elided == 2


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=50))
    def test_events_fire_in_sorted_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(delays)
        assert sim.now == max(delays)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.integers(min_value=0, max_value=99)),
                    min_size=1, max_size=40))
    def test_same_time_fifo_among_equal_delays(self, items):
        sim = Simulator()
        fired = []
        for delay, payload in items:
            sim.schedule(delay, lambda p=payload, d=delay: fired.append((d, p)))
        sim.run()
        # Stable sort by delay must reproduce the firing order exactly.
        assert fired == sorted(items, key=lambda item: item[0])
