"""Behavioural tests for the device-side (CP) scheduling policies."""

import pytest

from repro.config import SimConfig
from repro.schedulers.lax import LaxityScheduler
from repro.schedulers.mlfq import (HIGH_LEVEL, LOW_LEVEL,
                                   MultiLevelFeedbackQueueScheduler)
from repro.schedulers.prema import PremaScheduler
from repro.schedulers.registry import make_scheduler
from repro.schedulers.rr import RoundRobinScheduler
from repro.schedulers.srf import ShortestRemainingFirstScheduler
from repro.schedulers.static_priority import (
    EarliestDeadlineFirstScheduler, LongestJobFirstScheduler,
    ShortestJobFirstScheduler)
from repro.sim.device import GPUSystem
from repro.units import MS, US

from conftest import make_descriptor, make_job


def run_jobs(policy, jobs, config=None):
    system = GPUSystem(policy, config or SimConfig())
    system.submit_workload(jobs)
    return system, system.run()


def saturating_descriptor(name="wide", wg_work=100 * US):
    """One launch that fills every full-rate slot of the default device."""
    return make_descriptor(name=name, num_wgs=32, wg_work=wg_work)


def contended_pair(first_work, second_work, deadline=100 * MS,
                   second_deadline=None):
    """Two device-saturating jobs arriving 1us apart."""
    first = make_job(job_id=0, arrival=0, deadline=deadline, descriptors=[
        make_descriptor(name="first", num_wgs=32, wg_work=first_work)])
    second = make_job(job_id=1, arrival=1 * US,
                      deadline=second_deadline or deadline, descriptors=[
        make_descriptor(name="second", num_wgs=32, wg_work=second_work)])
    return [first, second]


class TestStaticPriorities:
    def test_sjf_assigns_isolated_time_priority(self):
        short = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=10 * US)])
        long = make_job(job_id=1, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=90 * US)])
        run_jobs(ShortestJobFirstScheduler(), [short, long])
        assert short.priority < long.priority

    def test_ljf_is_mirror_of_sjf(self):
        short = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=10 * US)])
        long = make_job(job_id=1, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=90 * US)])
        run_jobs(LongestJobFirstScheduler(), [short, long])
        assert long.priority < short.priority

    def test_edf_orders_by_absolute_deadline(self):
        late = make_job(job_id=0, arrival=0, deadline=50 * MS)
        soon = make_job(job_id=1, arrival=0, deadline=5 * MS)
        run_jobs(EarliestDeadlineFirstScheduler(), [late, soon])
        assert soon.priority < late.priority

    def test_sjf_prioritizes_short_job_under_contention(self):
        # A long job saturates the device; a short job arrives just after.
        # Under SJF the short job's WGs go first once slots free.
        jobs = contended_pair(first_work=500 * US, second_work=50 * US)
        _, metrics = run_jobs(ShortestJobFirstScheduler(), jobs)
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert outcome[1].completion < outcome[0].completion


class TestRoundRobin:
    def test_all_jobs_complete(self):
        jobs = [make_job(job_id=i, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=8, wg_work=50 * US)]) for i in range(6)]
        _, metrics = run_jobs(RoundRobinScheduler(), jobs)
        assert all(o.completion is not None for o in metrics.outcomes)

    def test_round_robin_shares_rather_than_prioritises(self):
        jobs = contended_pair(first_work=300 * US, second_work=300 * US)
        _, metrics = run_jobs(RoundRobinScheduler(), jobs)
        completions = [o.completion for o in metrics.outcomes]
        # Equal-size saturating jobs finish close together under sharing.
        assert abs(completions[0] - completions[1]) < 100 * US


class TestSRF:
    def test_priorities_track_remaining_estimates(self):
        jobs = [make_job(job_id=i, deadline=100 * MS, descriptors=[
            make_descriptor(name="k", num_wgs=4, wg_work=200 * US)
        ] * (i + 1)) for i in range(3)]
        run_jobs(ShortestRemainingFirstScheduler(), jobs)
        # All completed; priorities were finite estimates at some point.
        assert all(job.is_done for job in jobs)

    def test_srf_completes_everything(self):
        jobs = contended_pair(first_work=300 * US, second_work=100 * US)
        _, metrics = run_jobs(ShortestRemainingFirstScheduler(), jobs)
        assert all(o.completion is not None for o in metrics.outcomes)


class TestMLFQ:
    def test_job_demoted_after_a_third_of_deadline(self):
        job = make_job(deadline=3 * MS, descriptors=[
            make_descriptor(num_wgs=32, wg_work=2 * MS)])
        system = GPUSystem(MultiLevelFeedbackQueueScheduler(), SimConfig())
        system.submit_workload([job])
        system.sim.run_until(int(1.5 * MS))
        assert job.priority == LOW_LEVEL
        system.sim.run()

    def test_job_promoted_back_after_two_thirds(self):
        job = make_job(deadline=3 * MS, descriptors=[
            make_descriptor(num_wgs=32, wg_work=2800 * US)])
        system = GPUSystem(MultiLevelFeedbackQueueScheduler(), SimConfig())
        system.submit_workload([job])
        system.sim.run_until(int(2.5 * MS))
        assert job.priority == HIGH_LEVEL
        system.sim.run()

    def test_fresh_job_starts_high(self):
        job = make_job(deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=10 * US)])
        run_jobs(MultiLevelFeedbackQueueScheduler(), [job])
        assert job.priority == HIGH_LEVEL


class TestPrema:
    def test_preempts_for_high_token_job(self):
        # A big old job saturates; PREMA's 250us epochs preempt it for the
        # short job whose slowdown (elapsed/isolated) grows much faster.
        hog = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(name="hog", num_wgs=32, wg_work=5 * MS,
                            threads_per_wg=640)])
        sprinter = make_job(job_id=1, arrival=10 * US, deadline=100 * MS,
                            descriptors=[
            make_descriptor(name="spr", num_wgs=32, wg_work=50 * US,
                            threads_per_wg=640)])
        policy = PremaScheduler()
        system, metrics = run_jobs(policy, [hog, sprinter])
        assert policy.preemption_events > 0
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert outcome[1].completion < outcome[0].completion

    def test_no_preemption_when_device_fits_everyone(self):
        jobs = [make_job(job_id=i, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=2, wg_work=100 * US)]) for i in range(3)]
        policy = PremaScheduler()
        run_jobs(policy, jobs)
        assert policy.preemption_events == 0

    def test_preempted_work_reexecutes(self):
        hog = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(name="hog", num_wgs=32, wg_work=5 * MS,
                            threads_per_wg=640)])
        sprinter = make_job(job_id=1, arrival=10 * US, deadline=100 * MS,
                            descriptors=[
            make_descriptor(name="spr", num_wgs=32, wg_work=50 * US,
                            threads_per_wg=640)])
        system, metrics = run_jobs(PremaScheduler(), [hog, sprinter])
        assert all(o.completion is not None for o in metrics.outcomes)
        assert system.dispatcher.wgs_preempted > 0


class TestLaxityScheduler:
    def test_rejects_invalid_init_mode(self):
        with pytest.raises(Exception):
            LaxityScheduler(init_priority="median")

    def test_admission_stats_exposed(self):
        jobs = [make_job(job_id=i, arrival=i * US, deadline=50 * US,
                         descriptors=[saturating_descriptor(wg_work=25 * US)])
                for i in range(8)]
        policy = LaxityScheduler()
        run_jobs(policy, jobs)
        assert policy.admission.decisions == 8
        assert policy.admission.rejected > 0

    def test_admission_can_be_disabled(self):
        jobs = [make_job(job_id=i, arrival=i * US, deadline=50 * US,
                         descriptors=[saturating_descriptor(wg_work=25 * US)])
                for i in range(8)]
        policy = LaxityScheduler(enable_admission=False)
        _, metrics = run_jobs(policy, jobs)
        assert metrics.jobs_rejected == 0

    def test_job_table_emptied_at_end(self):
        jobs = [make_job(job_id=i, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=2, wg_work=50 * US)]) for i in range(4)]
        policy = LaxityScheduler()
        run_jobs(policy, jobs)
        assert len(policy.job_table) == 0

    def test_prioritizes_least_laxity_job(self):
        # Figure 3 scenario: the tight-deadline job must finish by its
        # deadline even though it arrived later.  A warmup job first seeds
        # the profiling table (the paper's scenario assumes steady state).
        warmup = make_job(job_id=0, arrival=0, deadline=100 * MS,
                          descriptors=[
            make_descriptor(name="k", num_wgs=8, wg_work=100 * US)])
        relaxed = make_job(job_id=1, arrival=300 * US, deadline=50 * MS,
                           descriptors=[
            make_descriptor(name="k", num_wgs=32, wg_work=500 * US)])
        urgent = make_job(job_id=2, arrival=500 * US, deadline=2500 * US,
                          descriptors=[
            make_descriptor(name="k", num_wgs=32, wg_work=500 * US)])
        _, metrics = run_jobs(LaxityScheduler(), [warmup, relaxed, urgent])
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert outcome[2].met_deadline

    def test_tracker_receives_samples(self):
        from repro.metrics.tracking import PredictionTracker
        tracker = PredictionTracker(job_ids=[0])
        job = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(name="k", num_wgs=8, wg_work=300 * US)] * 4)
        run_jobs(LaxityScheduler(tracker=tracker), [job])
        trace = tracker.trace_of(0)
        assert trace is not None
        assert trace.actual_completion is not None
        assert len(trace.samples) >= 1


class TestRegistry:
    def test_all_eleven_plus_variants_registered(self):
        from repro.schedulers.registry import (ALL_SCHEDULERS,
                                               PAPER_SCHEDULERS)
        assert set(PAPER_SCHEDULERS) == {
            "RR", "MLFQ", "EDF", "SJF", "SRF", "LJF", "PREMA",
            "BAT", "BAY", "PRO", "LAX", "LAX-SW", "LAX-CPU"}
        assert "LAX-PREMA" in ALL_SCHEDULERS

    def test_factory_kwargs_forwarded(self):
        policy = make_scheduler("LAX", enable_admission=False)
        assert isinstance(policy, LaxityScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(Exception):
            make_scheduler("FIFO")

    def test_instances_are_fresh(self):
        assert make_scheduler("RR") is not make_scheduler("RR")
