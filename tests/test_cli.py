"""Unit tests for the lax-sim command-line entry point."""

import pytest

from repro.cli import main
from repro.telemetry import validate_bundle


class TestCli:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "LSTM" in out
        assert "LAX" in out
        assert "high" in out

    def test_runs_small_cell(self, capsys):
        code = main(["--benchmark", "IPV6", "--scheduler", "LAX",
                     "--rate", "high", "--jobs", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs meeting deadline" in out
        assert "IPV6/LAX@high" in out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["--benchmark", "NOPE"])

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["--scheduler", "FIFO"])


class TestTelemetryModes:
    def test_emit_telemetry_writes_valid_bundle(self, tmp_path, capsys):
        out = str(tmp_path / "bundle")
        code = main(["--benchmark", "LSTM", "--scheduler", "LAX",
                     "--jobs", "16", "--emit-telemetry", out])
        assert code == 0
        assert validate_bundle(out)["trace_events"] > 0
        assert "telemetry bundle" in capsys.readouterr().out

    def test_report_command_prints_markdown(self, capsys):
        code = main(["report", "--benchmark", "LSTM", "--scheduler", "LAX",
                     "--jobs", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "post-mortems" in out

    def test_trace_composes_with_workload(self, tmp_path, capsys):
        workload = str(tmp_path / "w.json")
        assert main(["--benchmark", "IPV6", "--jobs", "8",
                     "--save-workload", workload]) == 0
        trace = str(tmp_path / "t.jsonl")
        code = main(["--workload", workload, "--scheduler", "RR",
                     "--trace", trace])
        assert code == 0
        assert "trace events" in capsys.readouterr().out

    def test_emit_telemetry_composes_with_compare(self, tmp_path, capsys):
        out = str(tmp_path / "cmp")
        code = main(["--benchmark", "LSTM", "--jobs", "12",
                     "--compare", "RR", "LAX", "--emit-telemetry", out])
        assert code == 0
        for name in ("RR", "LAX"):
            assert validate_bundle(f"{out}/{name}")["trace_events"] > 0

    def test_trace_with_compare_is_an_error(self, capsys):
        code = main(["--compare", "RR", "LAX", "--trace", "x.jsonl"])
        assert code == 2
        assert "--emit-telemetry" in capsys.readouterr().out

    def test_save_workload_with_telemetry_is_an_error(self, tmp_path,
                                                      capsys):
        code = main(["--save-workload", str(tmp_path / "w.json"),
                     "--emit-telemetry", str(tmp_path / "b")])
        assert code == 2
        assert "nothing is simulated" in capsys.readouterr().out

    def test_workload_with_compare_is_an_error(self, capsys):
        code = main(["--workload", "w.json", "--compare", "RR"])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().out

    def test_bad_trace_extension_is_an_error(self, capsys):
        code = main(["--trace", "trace.txt"])
        assert code == 2
        assert ".jsonl or .csv" in capsys.readouterr().out


class TestEventCoreReport:
    """``lax-sim report`` surfaces the event-core counters (PR 10)."""

    def test_stream_report_includes_event_core_section(self, capsys):
        code = main(["report", "--benchmark", "SUSTAINED",
                     "--scheduler", "LAX", "--stream", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Event core" in out
        assert "committed events" in out
        assert "job pool" in out

    def test_from_bundle_surfaces_counters(self, tmp_path, capsys):
        bundle = str(tmp_path / "bundle")
        assert main(["report", "--benchmark", "SUSTAINED",
                     "--scheduler", "LAX", "--stream", "300",
                     "--emit-telemetry", bundle]) == 0
        capsys.readouterr()
        assert main(["report", "--from-bundle", bundle]) == 0
        out = capsys.readouterr().out
        assert "## Event core" in out
        assert "periodic ticks" in out

    def test_older_bundle_without_counters_renders_clean(self, tmp_path,
                                                         capsys):
        """Bundles written before the event core existed lack the key;
        the renderer must skip the section, not crash."""
        import json
        import os

        bundle = str(tmp_path / "old")
        assert main(["report", "--benchmark", "SUSTAINED",
                     "--scheduler", "LAX", "--stream", "300",
                     "--emit-telemetry", bundle]) == 0
        capsys.readouterr()
        path = os.path.join(bundle, "report.json")
        with open(path, encoding="utf-8") as source:
            report = json.load(source)
        report["diagnostics"].pop("event_core")
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(report, sink)
        assert main(["report", "--from-bundle", bundle]) == 0
        out = capsys.readouterr().out
        assert "## Event core" not in out
        assert "# Run report" in out
