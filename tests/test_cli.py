"""Unit tests for the lax-sim command-line entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "LSTM" in out
        assert "LAX" in out
        assert "high" in out

    def test_runs_small_cell(self, capsys):
        code = main(["--benchmark", "IPV6", "--scheduler", "LAX",
                     "--rate", "high", "--jobs", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs meeting deadline" in out
        assert "IPV6/LAX@high" in out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["--benchmark", "NOPE"])

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["--scheduler", "FIFO"])
