"""Tests for latency-insensitive jobs and dynamic stream appending.

Covers two paper behaviours beyond the headline evaluation:

* Section 5.2: "LAX does not affect latency-insensitive applications
  because the programmer does not provide a deadline for them" — jobs
  with ``deadline=None`` are never rejected, rank last under deadline-
  aware policies, and stay out of the deadline metrics.
* Footnote 1: "If additional work is later enqueued to the job's stream,
  LAX will update its prediction."
"""

import math

import pytest

from repro.config import SimConfig
from repro.core.laxity import laxity_priority, laxity_time
from repro.core.profiling import KernelProfilingTable
from repro.errors import SimulationError, WorkloadError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import JobState
from repro.units import MS, US
from repro.workloads.background import (build_background_jobs,
                                        merge_workloads)
from repro.workloads.registry import build_workload

from conftest import make_descriptor, make_job


def background_job(job_id=0, arrival=0, num_wgs=8, wg_work=100 * US):
    return make_job(job_id=job_id, arrival=arrival, deadline=None,
                    descriptors=[make_descriptor(name="bg", num_wgs=num_wgs,
                                                 wg_work=wg_work)])


class TestJobModel:
    def test_deadline_none_allowed(self):
        job = background_job()
        assert not job.is_latency_sensitive
        assert job.absolute_deadline is None
        assert not job.met_deadline

    def test_laxity_is_infinite(self):
        job = background_job()
        table = KernelProfilingTable(100 * US)
        assert math.isinf(laxity_time(job, table, 0))
        assert laxity_priority(job, table, 0) == math.inf


class TestSchedulingBehaviour:
    @pytest.mark.parametrize("scheduler", ["RR", "LAX", "EDF", "MLFQ",
                                           "PREMA", "BAY", "PRO",
                                           "LAX-SW", "LAX-CPU"])
    def test_background_jobs_complete_and_are_never_rejected(self, scheduler):
        jobs = [background_job(job_id=i, arrival=(i + 1) * 50 * US)
                for i in range(4)]
        system = GPUSystem(make_scheduler(scheduler), SimConfig())
        system.submit_workload(jobs)
        metrics = system.run()
        assert metrics.jobs_rejected == 0
        assert all(o.completion is not None for o in metrics.outcomes)

    def test_lax_keeps_serving_deadline_jobs_first(self):
        # Saturating background work + a tight-deadline job arriving
        # later: the deadline job must still make it under LAX.
        background = [background_job(job_id=i, arrival=10 * US,
                                     num_wgs=32, wg_work=500 * US)
                      for i in range(2)]
        urgent = make_job(job_id=10, arrival=600 * US, deadline=2 * MS,
                          descriptors=[make_descriptor(
                              name="rt", num_wgs=32, wg_work=400 * US)])
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        system.submit_workload(background + [urgent])
        metrics = system.run()
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert outcome[10].met_deadline

    def test_metrics_exclude_background_from_deadline_ratio(self):
        sensitive = make_job(job_id=0, deadline=100 * MS,
                             descriptors=[make_descriptor(num_wgs=1,
                                                          wg_work=10 * US)])
        background = background_job(job_id=1, arrival=10 * US)
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([sensitive, background])
        metrics = system.run()
        assert metrics.num_latency_sensitive == 1
        assert metrics.deadline_ratio == 1.0


class TestStreamAppending:
    def test_append_extends_wglist(self):
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=2)])
        job.append_kernels([make_descriptor(name="b", num_wgs=3)])
        assert job.num_kernels == 2
        assert job.total_wgs == 5
        assert job.kernels[1].index == 1

    def test_append_nothing_rejected(self):
        with pytest.raises(WorkloadError):
            make_job().append_kernels([])

    def test_append_to_finished_job_rejected(self):
        job = make_job()
        job.mark_rejected(0)
        with pytest.raises(SimulationError):
            job.append_kernels([make_descriptor()])

    def test_cp_append_runs_new_work(self):
        first = make_descriptor(name="a", num_wgs=1, wg_work=200 * US)
        job = make_job(deadline=100 * MS, descriptors=[first])
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([job])
        extra = make_descriptor(name="b", num_wgs=1, wg_work=50 * US)
        system.sim.schedule_at(
            50 * US, system.cp.append_work, job, [extra])
        metrics = system.run()
        assert job.state is JobState.COMPLETED
        assert job.kernels[1].is_done
        assert metrics.outcomes[0].wgs_executed == 2

    def test_lax_prediction_updates_after_append(self):
        # Footnote 1: appended work must show up in remaining estimates.
        from repro.core.laxity import estimate_remaining_time
        from test_laxity import table_with_rate, WINDOW
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        job = make_job(arrival=now, deadline=100 * MS,
                       descriptors=[make_descriptor(name="k", num_wgs=10)])
        before = estimate_remaining_time(job, table, now)
        job.append_kernels([make_descriptor(name="k", num_wgs=10)])
        after = estimate_remaining_time(job, table, now)
        assert after == pytest.approx(before * 2)


class TestBackgroundWorkload:
    def test_builder_produces_deadline_less_jobs(self):
        jobs = build_background_jobs(6, 1000, seed=1, gpu=SimConfig().gpu)
        assert len(jobs) == 6
        assert all(job.deadline is None for job in jobs)
        assert all(job.benchmark == "BACKGROUND" for job in jobs)

    def test_kernels_per_job(self):
        jobs = build_background_jobs(2, 1000, seed=1, gpu=SimConfig().gpu,
                                     kernels_per_job=3)
        assert all(job.num_kernels == 3 for job in jobs)

    def test_merge_workloads_unique_ordered_ids(self):
        gpu = SimConfig().gpu
        stem = build_workload("STEM", "low", num_jobs=5, seed=1, gpu=gpu)
        background = build_background_jobs(3, 1000, seed=2, gpu=gpu)
        merged = merge_workloads(stem, background)
        assert [job.job_id for job in merged] == list(range(8))
        arrivals = [job.arrival for job in merged]
        assert arrivals == sorted(arrivals)

    def test_merge_empty_rejected(self):
        with pytest.raises(WorkloadError):
            merge_workloads([])

    def test_colocation_run_completes(self):
        gpu = SimConfig().gpu
        stem = build_workload("STEM", "low", num_jobs=8, seed=1, gpu=gpu)
        background = build_background_jobs(2, 2000, seed=2, gpu=gpu)
        merged = merge_workloads(stem, background)
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        system.submit_workload(merged)
        metrics = system.run()
        bg = [o for o in metrics.outcomes if o.benchmark == "BACKGROUND"]
        assert all(o.completion is not None for o in bg)
