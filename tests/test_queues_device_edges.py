"""Edge cases for the thinnest-covered sim modules: queues and device.

Queue-pool bookkeeping (empty release, duplicate job ids, backlog order,
bind/release cycling) and GPUSystem lifecycle corners (double submit,
empty workloads, teardown with resident WGs, the run_workload one-shot).
"""

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem, run_workload
from repro.sim.queues import ComputeQueue, QueuePool
from repro.units import MS, US

from conftest import make_descriptor, make_job, make_jobs


class TestQueuePool:
    def test_needs_at_least_one_queue(self):
        with pytest.raises(SimulationError):
            QueuePool(0)

    def test_release_of_unbound_job_is_an_error(self):
        pool = QueuePool(4)
        with pytest.raises(SimulationError, match="holds no queue"):
            pool.release(make_job())

    def test_queue_of_unbound_job_is_an_error(self):
        pool = QueuePool(4)
        with pytest.raises(SimulationError, match="holds no queue"):
            pool.queue_of(make_job())

    def test_duplicate_job_id_cannot_bind_twice(self):
        # Overwriting the job->queue mapping would leak the first queue
        # forever; the pool must refuse instead.
        pool = QueuePool(4)
        job = make_job(job_id=7)
        twin = make_job(job_id=7)
        pool.try_bind(job)
        with pytest.raises(SimulationError, match="already bound"):
            pool.try_bind(twin)
        assert pool.num_bound == 1
        assert pool.num_free == 3

    def test_backlog_preserves_fifo_order(self):
        pool = QueuePool(1)
        first, second, third = (make_job(job_id=i) for i in range(3))
        assert pool.try_bind(first) is not None
        assert pool.try_bind(second) is None
        assert pool.try_bind(third) is None
        assert list(pool.backlog) == [second, third]
        assert pool.release(first) is second
        assert pool.try_bind(second) is not None
        assert pool.release(second) is third

    def test_release_with_empty_backlog_returns_none(self):
        pool = QueuePool(2)
        job = make_job()
        pool.try_bind(job)
        assert pool.release(job) is None
        assert pool.num_free == 2
        assert pool.num_bound == 0

    def test_bind_release_cycle_reuses_queues(self):
        pool = QueuePool(2)
        for round_number in range(5):
            job = make_job(job_id=round_number)
            queue = pool.try_bind(job)
            assert queue is not None
            assert pool.queue_of(job) is queue
            pool.release(job)
        assert pool.num_free == 2
        assert not pool.backlog

    def test_live_jobs_in_queue_id_order(self):
        pool = QueuePool(3)
        jobs = [make_job(job_id=i) for i in range(3)]
        for job in jobs:
            pool.try_bind(job)
        assert pool.live_jobs() == jobs


class TestComputeQueue:
    def test_double_bind_is_an_error(self):
        queue = ComputeQueue(0)
        queue.bind(make_job(job_id=0))
        with pytest.raises(SimulationError, match="already bound"):
            queue.bind(make_job(job_id=1))

    def test_released_queue_has_no_ready_kernels(self):
        queue = ComputeQueue(0)
        job = make_job()
        queue.bind(job)
        queue.release()
        assert queue.is_free
        assert queue.ready_kernels() == []
        assert queue.head_kernel() is None


class TestGPUSystemLifecycle:
    def test_run_without_workload_is_an_error(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        with pytest.raises(SimulationError, match="no workload"):
            system.run()

    def test_double_submit_is_an_error(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([make_job()])
        with pytest.raises(SimulationError, match="already submitted"):
            system.submit_workload([make_job(job_id=1)])

    def test_empty_workload_is_an_error(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        with pytest.raises(SimulationError, match="empty workload"):
            system.submit_workload([])

    def test_teardown_with_resident_wgs_is_visible(self):
        """A device abandoned mid-run still hosts WGs and bound queues —
        the state the drain check and the run_end invariant exist for."""
        job = make_job(descriptors=[make_descriptor(wg_work=1 * MS,
                                                    num_wgs=8)],
                       deadline=20 * MS)
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([job])
        system.sim.run_until(50 * US)
        assert any(cu.num_residents for cu in system.dispatcher.cus)
        assert system.pool.num_bound == 1
        # Draining the rest of the events finishes the job cleanly.
        system.sim.run()
        assert system.pool.num_bound == 0
        assert all(cu.num_residents == 0 for cu in system.dispatcher.cus)

    def test_run_workload_one_shot(self):
        metrics = run_workload(make_scheduler("RR"), make_jobs(3))
        assert metrics.num_jobs == 3
        assert metrics.jobs_meeting_deadline == 3

    def test_backlogged_arrivals_eventually_run(self):
        # More simultaneous jobs than hardware queues: the overflow waits
        # in the backlog and still completes once queues free up.
        import dataclasses
        base = SimConfig()
        config = base.replace(
            gpu=dataclasses.replace(base.gpu, num_queues=2))
        jobs = [make_job(job_id=i, arrival=0, deadline=50 * MS)
                for i in range(5)]
        system = GPUSystem(make_scheduler("RR"), config)
        system.submit_workload(jobs)
        metrics = system.run()
        assert metrics.num_jobs == 5
        assert all(o.completion is not None for o in metrics.outcomes)
