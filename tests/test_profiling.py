"""Unit tests for the Kernel Profiling Table (WG completion rates)."""

import pytest

from repro.core.profiling import KernelProfilingTable
from repro.errors import ConfigError, SimulationError
from repro.units import US

WINDOW = 100 * US


def drive_uniform_completions(table, name, count, spacing, start=0):
    """Run ``count`` back-to-back WGs, each busy for ``spacing`` ticks."""
    now = start
    for _ in range(count):
        table.on_wg_issued(name, now)
        now += spacing
        table.record_wg_completion(name, now)


class TestValidation:
    def test_zero_window_rejected(self):
        with pytest.raises(ConfigError):
            KernelProfilingTable(0)

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ConfigError):
            KernelProfilingTable(WINDOW, smoothing=0.0)

    def test_completion_without_issue_rejected(self):
        table = KernelProfilingTable(WINDOW)
        with pytest.raises(SimulationError):
            table.record_wg_completion("k", 10)

    def test_preemption_underflow_rejected(self):
        table = KernelProfilingTable(WINDOW)
        table.on_wg_issued("k", 0)
        with pytest.raises(SimulationError):
            table.on_wgs_preempted("k", 2, 10)


class TestRateEstimation:
    def test_unknown_kernel_has_no_rate(self):
        table = KernelProfilingTable(WINDOW)
        assert table.completion_rate("nope", 0) is None

    def test_busy_time_normalised_rate(self):
        table = KernelProfilingTable(WINDOW)
        # 10 WGs in flight for 50 us, all complete at the end: the rate is
        # 10 / 50 us, NOT 10 / window.
        for _ in range(10):
            table.on_wg_issued("k", 0)
        for _ in range(10):
            table.record_wg_completion("k", 50 * US)
        rate = table.completion_rate("k", 2 * WINDOW)
        assert rate == pytest.approx(10 / (50 * US), rel=0.01)

    def test_idle_gap_does_not_dilute_rate(self):
        table = KernelProfilingTable(WINDOW)
        for _ in range(10):
            table.on_wg_issued("k", 0)
        for _ in range(10):
            table.record_wg_completion("k", 50 * US)
        # A long idle stretch follows; the published rate must not decay.
        rate_late = table.completion_rate("k", 50 * WINDOW)
        assert rate_late == pytest.approx(10 / (50 * US), rel=0.01)

    def test_busy_time_spans_windows(self):
        table = KernelProfilingTable(WINDOW)
        # One WG busy for 3 windows: rate must be 1 / (3 windows), not
        # 1 / (slice of final window).
        table.on_wg_issued("k", 0)
        table.record_wg_completion("k", 3 * WINDOW)
        rate = table.completion_rate("k", 4 * WINDOW)
        assert rate == pytest.approx(1 / (3 * WINDOW), rel=0.01)

    def test_rate_reflects_contention_change(self):
        table = KernelProfilingTable(WINDOW)
        drive_uniform_completions(table, "k", 50, spacing=US)
        fast = table.completion_rate("k", 2 * WINDOW)
        # Contention: completions now 10x slower.
        drive_uniform_completions(table, "k", 50, spacing=10 * US,
                                  start=2 * WINDOW)
        slow = table.completion_rate("k", 20 * WINDOW)
        assert slow < fast

    def test_cold_read_uses_live_estimate(self):
        table = KernelProfilingTable(WINDOW)
        table.on_wg_issued("k", 0)
        table.record_wg_completion("k", 10 * US)
        # Window has not closed yet; a live estimate is still available.
        rate = table.completion_rate("k", 20 * US)
        assert rate == pytest.approx(1 / (10 * US), rel=0.05)

    def test_kernels_tracked_independently(self):
        table = KernelProfilingTable(WINDOW)
        drive_uniform_completions(table, "fast", 20, spacing=US)
        drive_uniform_completions(table, "slow", 20, spacing=5 * US)
        now = 5 * WINDOW
        assert (table.completion_rate("fast", now)
                > table.completion_rate("slow", now))


class TestCounters:
    def test_total_completed(self):
        table = KernelProfilingTable(WINDOW)
        drive_uniform_completions(table, "k", 7, spacing=US)
        assert table.total_completed("k") == 7
        assert table.total_completed("other") == 0

    def test_known_kernels(self):
        table = KernelProfilingTable(WINDOW)
        table.on_wg_issued("a", 0)
        table.on_wg_issued("b", 0)
        assert table.known_kernels() == 2

    def test_preemption_reduces_in_flight_only(self):
        table = KernelProfilingTable(WINDOW)
        table.on_wg_issued("k", 0)
        table.on_wg_issued("k", 0)
        table.on_wgs_preempted("k", 2, 10 * US)
        assert table.total_completed("k") == 0
        # Re-issue and complete: no underflow.
        table.on_wg_issued("k", 20 * US)
        table.record_wg_completion("k", 30 * US)
        assert table.total_completed("k") == 1

    def test_zero_count_preemption_is_noop(self):
        table = KernelProfilingTable(WINDOW)
        table.on_wgs_preempted("k", 0, 10)
        assert table.known_kernels() == 0
