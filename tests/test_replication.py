"""Unit tests for seed replication and the extended CLI."""

import pytest

from repro.cli import main
from repro.harness import SweepSpec
from repro.harness.replication import (ReplicatedMetric, compare_sweep,
                                       replicate_sweep)


def _replicate(benchmark, scheduler, num_jobs, seeds):
    sweep = SweepSpec(benchmarks=(benchmark,), schedulers=(scheduler,),
                      seeds=seeds, num_jobs=num_jobs)
    return replicate_sweep(sweep)[0]


class TestReplicatedMetric:
    def test_mean_and_stdev(self):
        metric = ReplicatedMetric((1.0, 2.0, 3.0))
        assert metric.mean == 2.0
        assert metric.stdev == pytest.approx(1.0)
        assert metric.minimum == 1.0
        assert metric.maximum == 3.0

    def test_single_value_has_zero_stdev(self):
        assert ReplicatedMetric((5.0,)).stdev == 0.0

    def test_describe(self):
        text = ReplicatedMetric((1.0, 3.0)).describe()
        assert "2.0" in text
        assert "[1..3]" in text


class TestReplicateSweep:
    def test_runs_across_seeds(self):
        cell = _replicate("IPV6", "LAX", num_jobs=16, seeds=(1, 2))
        assert cell.seeds == (1, 2)
        assert len(cell.deadline_met.values) == 2
        assert cell.deadline_met.mean >= 0

    def test_seeds_vary_outcomes(self):
        cell = _replicate("LSTM", "RR", num_jobs=24, seeds=(1, 2, 3))
        # Different arrival draws should not all produce one exact count
        # (an identical triple would suggest the seed is ignored).
        assert len(set(cell.deadline_met.values)) >= 2


class TestCompareSweep:
    def test_duel_structure(self):
        duel = compare_sweep(SweepSpec(
            benchmarks=("IPV6",), schedulers=("LAX", "RR"),
            seeds=(1, 2), num_jobs=16))
        assert duel["num_seeds"] == 2
        assert len(duel["pairs"]) == 2
        assert 0 <= duel["wins"] <= 2

    def test_self_duel_ties(self):
        duel = compare_sweep(SweepSpec(
            benchmarks=("IPV6",), schedulers=("RR", "RR"),
            seeds=(1, 2), num_jobs=16))
        assert duel["wins"] == 1.0  # two ties at half a win each
        assert duel["consistent"]


class TestCliCompare:
    def test_compare_prints_table(self, capsys):
        code = main(["--benchmark", "IPV6", "--jobs", "12",
                     "--compare", "RR", "LAX"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RR" in out and "LAX" in out
        assert "met deadline" in out

    def test_compare_rejects_unknown(self, capsys):
        code = main(["--benchmark", "IPV6", "--jobs", "12",
                     "--compare", "FIFO"])
        assert code == 2


class TestCliWorkloadFiles:
    def test_save_and_run_workload(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        assert main(["--benchmark", "IPV6", "--jobs", "8",
                     "--save-workload", str(path)]) == 0
        assert path.exists()
        assert main(["--scheduler", "LAX", "--workload", str(path)]) == 0
        out = capsys.readouterr().out
        assert "jobs meeting deadline" in out
