"""Mode-flag cross-product: every combination simulates the same run.

The engine has five independent differential switches —
``engine_mode`` (PR-4 hot-path), ``scheduler_tick_mode`` (PR-5
epoch-gated LAX tick), ``retirement_mode`` (streaming job retirement),
``vectorized_mode`` (SoA hot state) and ``event_core_mode`` (PR-10
calendar queue, event fusion, counted pump, flattened admission, slot
cache, fused timer drain, live cache, job pool) — each individually
proven bit-identical by its own test family.  This module closes the
gap those families leave open: *interactions*.  A flag pair that each
work alone can still diverge together (e.g. the vectorized pump
consulting a stale bound the seed engine never maintains), so the full
2^5 matrix runs a mini sustained cell per scheduler and every
combination must reproduce the reference decisions exactly.

Three tiers:

* **decision signature over the full matrix** — retirement folds
  per-job outcomes into stream aggregates, so the matrix-wide signature
  uses the retirement-insensitive decision facts (deadline verdicts,
  rejections, WG issue/preempt counts, admission counters, end time);
* **per-job outcomes over the non-retired half** — with retirement off
  the full per-job outcome tuples must match leaf-for-leaf;
* **streamed-vs-finite prefix identity under the all-on fast path** —
  the PR-6 load-bearing property, re-checked with every optimization
  engaged at once.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.config import SimConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.modes import (engine_mode, event_core_mode, retirement_mode,
                             scheduler_tick_mode, vectorized_mode)
from repro.workloads.streaming import (SUSTAINED_RATES, build_sustained_jobs,
                                       sustained_source)

RATE = SUSTAINED_RATES["high"]


@pytest.fixture(autouse=True)
def _engage_small_cells(monkeypatch):
    """The mini cells sit below the vectorized population gates
    (``_VEC_MIN_JOBS`` / ``_VEC_MIN_ACTIVE``); force the SoA paths on so
    the vectorized half of the flag matrix actually runs vectorized."""
    monkeypatch.setattr("repro.schedulers.lax._VEC_MIN_JOBS", 1)
    monkeypatch.setattr("repro.sim.dispatcher._VEC_MIN_ACTIVE", 1)
NUM_JOBS = 60
#: The paper's contribution, a fair-rotation baseline and the hybrid —
#: one representative of each dispatch style the flags must preserve.
SCHEDULERS = ("LAX", "RR", "LAX-PREMA")
#: (engine optimized, tick gated, retirement on, vectorized core,
#: event core).
COMBOS = tuple(itertools.product((False, True), repeat=5))
REFERENCE = (False, False, False, False, False)


def _decision_signature(system, metrics):
    """Decision-level facts every flag combination must reproduce.

    Deliberately excludes ``events_fired`` (the optimized engine elides
    bookkeeping events) and per-job outcome rows (retirement folds them
    into the stream aggregate) — those are pinned by the per-flag
    differential suites under fixed settings of the *other* flags.
    """
    admission = getattr(system.policy, "admission", None)
    return (
        metrics.num_jobs,
        metrics.jobs_meeting_deadline,
        metrics.jobs_rejected,
        metrics.num_latency_sensitive,
        metrics.wg_completions,
        metrics.end_time,
        metrics.p99_latency_ticks,
        system.dispatcher.wgs_issued,
        system.dispatcher.wgs_preempted,
        system.host.commands_sent,
        (admission.accepted, admission.rejected,
         admission.fast_accepted, admission.late_rejected)
        if admission is not None else None,
    )


def _matrix_run(scheduler, engine, tick, retire, vectorized,
                event_core=False, num_jobs=NUM_JOBS):
    """One streamed mini-cell run under the given flag combination."""
    with engine_mode(engine), scheduler_tick_mode(tick), \
            retirement_mode(retire), vectorized_mode(vectorized), \
            event_core_mode(event_core):
        system = GPUSystem(make_scheduler(scheduler), SimConfig())
        system.submit_stream(sustained_source(RATE).jobs(),
                             max_jobs=num_jobs)
        metrics = system.run()
    return system, metrics


class TestModesMatrix:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_all_thirty_two_combos_identical_decisions(self, scheduler):
        reference = _decision_signature(
            *_matrix_run(scheduler, *REFERENCE))
        for combo in COMBOS:
            if combo == REFERENCE:
                continue
            signature = _decision_signature(*_matrix_run(scheduler, *combo))
            assert signature == reference, (
                f"{scheduler} diverged under (engine, tick, retire, "
                f"vectorized, event_core)={combo}")

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_per_job_outcomes_identical_without_retirement(self, scheduler):
        outcomes = {}
        for combo in COMBOS:
            engine, tick, retire, vectorized, event_core = combo
            if retire:
                continue
            _, metrics = _matrix_run(scheduler, *combo)
            outcomes[combo] = [dataclasses.astuple(o)
                               for o in metrics.outcomes]
        reference = outcomes[REFERENCE]
        assert reference  # the mini cell must actually record outcomes
        for combo, rows in outcomes.items():
            assert rows == reference, (
                f"{scheduler} per-job outcomes diverged under (engine, "
                f"tick, retire, vectorized, event_core)={combo}")

    def test_prefix_identity_under_full_fast_path(self):
        """Streamed prefix == finite list with every optimization on."""
        with engine_mode(True), scheduler_tick_mode(True), \
                vectorized_mode(True), event_core_mode(True):
            jobs = build_sustained_jobs(NUM_JOBS, RATE, 1, SimConfig().gpu)
            finite_system = GPUSystem(make_scheduler("LAX"), SimConfig(),
                                      retire=False)
            finite_system.submit_workload(jobs)
            finite = finite_system.run()
            streamed_system, streamed = _matrix_run(
                "LAX", True, True, False, True, True)
        assert ([dataclasses.astuple(o) for o in streamed.outcomes]
                == [dataclasses.astuple(o) for o in finite.outcomes])
        assert _decision_signature(streamed_system, streamed) \
            == _decision_signature(finite_system, finite)
