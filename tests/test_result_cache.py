"""The persistent content-addressed result cache and its keying."""

import dataclasses
import os
import pickle

import pytest

import repro._version
from repro.config import SimConfig
from repro.harness import (ResultCache, RunOptions, Runner, cache_key,
                           clear_cache, code_fingerprint)
from repro.harness.cache import default_cache_dir
from repro.harness.experiment import ExperimentSpec, run_cell


@pytest.fixture
def spec():
    return ExperimentSpec(benchmark="IPV6", scheduler="RR", num_jobs=8)


@pytest.fixture
def result(spec):
    return run_cell(spec)


class TestCacheKey:
    def test_stable_for_same_inputs(self, spec):
        config = SimConfig()
        assert cache_key(spec, config) == cache_key(spec, config)
        # Equal configs hash equally even as distinct objects.
        assert cache_key(spec, SimConfig()) == cache_key(spec, config)

    def test_spec_fields_change_key(self, spec):
        config = SimConfig()
        base = cache_key(spec, config)
        other = dataclasses.replace(spec, seed=spec.seed + 1)
        assert cache_key(other, config) != base

    def test_config_field_change_is_a_miss(self, spec):
        base = cache_key(spec, SimConfig())
        tweaked = SimConfig()
        gpu = dataclasses.replace(tweaked.gpu, num_cus=tweaked.gpu.num_cus + 1)
        tweaked = dataclasses.replace(tweaked, gpu=gpu)
        assert cache_key(spec, tweaked) != base

    def test_validate_flag_changes_key(self, spec):
        config = SimConfig()
        assert (cache_key(spec, config, validate=True)
                != cache_key(spec, config, validate=False))

    def test_version_skew_changes_key(self, spec, monkeypatch):
        config = SimConfig()
        base = cache_key(spec, config)
        monkeypatch.setattr(repro._version, "__version__", "999.0.0")
        assert cache_key(spec, config) != base

    def test_scheduler_fingerprints_differ(self):
        assert code_fingerprint("LAX") != code_fingerprint("RR")
        assert code_fingerprint("LAX") == code_fingerprint("LAX")


class TestHitMissRefresh:
    def test_put_then_get_round_trips(self, tmp_path, spec, result):
        cache = ResultCache(str(tmp_path / "c"))
        config = SimConfig()
        assert cache.get(spec, config) is None  # cold
        cache.put(spec, config, result)
        hit = cache.get(spec, config)
        assert hit is not None
        assert hit.metrics.jobs_meeting_deadline \
            == result.metrics.jobs_meeting_deadline
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_changed_config_misses(self, tmp_path, spec, result):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put(spec, SimConfig(), result)
        tweaked = SimConfig()
        gpu = dataclasses.replace(tweaked.gpu, num_cus=tweaked.gpu.num_cus + 1)
        assert cache.get(spec, dataclasses.replace(tweaked, gpu=gpu)) is None

    def test_version_skew_misses_even_with_stale_key(
            self, tmp_path, spec, result, monkeypatch):
        cache = ResultCache(str(tmp_path / "c"))
        config = SimConfig()
        digest = cache.put(spec, config, result)
        # Forge an entry written by a different package version: same
        # digest path, mismatched version stamp inside the payload.
        path = cache._path(digest)
        with open(path, "rb") as source:
            payload = pickle.load(source)
        payload["version"] = "0.0.0-stale"
        with open(path, "wb") as sink:
            pickle.dump(payload, sink)
        assert cache.get(spec, config) is None

    def test_corrupt_pickle_is_a_miss(self, tmp_path, spec, result):
        cache = ResultCache(str(tmp_path / "c"))
        digest = cache.put(spec, SimConfig(), result)
        with open(cache._path(digest), "wb") as sink:
            sink.write(b"not a pickle")
        assert cache.get(spec, SimConfig()) is None

    def test_runner_hits_warm_cache(self, tmp_path, spec):
        from repro.harness.spec import single_cell_sweep
        sweep = single_cell_sweep(spec)
        cache_dir = str(tmp_path / "c")
        cold = Runner(workers=1, cache_dir=cache_dir).run(sweep)
        warm = Runner(workers=1, cache_dir=cache_dir).run(sweep)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)

    def test_refresh_recomputes_and_rewrites(self, tmp_path, spec):
        from repro.harness.spec import single_cell_sweep
        sweep = single_cell_sweep(spec)
        cache_dir = str(tmp_path / "c")
        Runner(workers=1, cache_dir=cache_dir).run(sweep)
        refreshed = Runner(workers=1, cache_dir=cache_dir,
                           refresh=True).run(sweep)
        assert (refreshed.cache_hits, refreshed.cache_misses) == (0, 1)
        # The refresh rewrote the entry, so the next run hits again.
        rerun = Runner(workers=1, cache_dir=cache_dir).run(sweep)
        assert rerun.cache_hits == 1

    def test_no_cache_never_touches_disk(self, tmp_path, monkeypatch, spec):
        from repro.harness.spec import single_cell_sweep
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
        outcome = Runner(workers=1, cache=False).run(single_cell_sweep(spec))
        assert outcome.ok
        assert not os.path.exists(str(tmp_path / "never"))

    def test_live_sinks_bypass_cache(self, tmp_path, spec):
        from repro.harness.spec import single_cell_sweep
        from repro.telemetry import TelemetryHub
        sweep = single_cell_sweep(spec)
        cache_dir = str(tmp_path / "c")
        Runner(workers=1, cache_dir=cache_dir).run(sweep)
        observed = Runner(workers=1, cache_dir=cache_dir).run(
            sweep, RunOptions(telemetry=TelemetryHub()))
        # Warm store, but the observed run recomputed anyway.
        assert (observed.cache_hits, observed.cache_misses) == (0, 1)


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path, spec, result):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.stats()["entries"] == 0
        cache.put(spec, SimConfig(), result)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_clear_cache_invalidates_persistent_store(
            self, tmp_path, monkeypatch, spec, result):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = ResultCache()
        cache.put(spec, SimConfig(), result)
        assert clear_cache() == 1
        assert cache.get(spec, SimConfig()) is None

    def test_clear_cache_memo_only(self, tmp_path, monkeypatch, spec,
                                   result):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = ResultCache()
        cache.put(spec, SimConfig(), result)
        assert clear_cache(persistent=False) == 0
        assert cache.get(spec, SimConfig()) is not None

    def test_default_dir_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere-else")
        assert default_cache_dir() == "/tmp/somewhere-else"
