"""Differential tests: the optimized engine is bit-identical to the seed.

Every PR-4 hot-path rewrite keeps its seed implementation behind an
engine-mode flag (:mod:`repro.sim.modes`), which makes the bit-identity
claim directly testable.  Four families:

* **Whole-system differential** — random workloads through every
  registered scheduler run once per engine mode with full WG-level
  tracing; the metrics, the event count, the final clock and the complete
  trace-event sequence (including per-WG CU placements) must be equal.
* **Component twins** — a pair of compute units (or profiling tables, or
  jobs) driven through the same residency sequence, one per mode; float
  state and timer event times must match exactly.
* **Batch-capacity algebra** — ``batch_capacity`` must equal the number
  of consecutive ``can_accept``/``start_wg`` rounds that succeed.
* **Event-heap bookkeeping** — the O(1) ``pending_events`` counter always
  agrees with a heap scan, and compaction shrinks the heap without
  reordering a single surviving event.
"""

import dataclasses

from hypothesis import given, strategies as st

from repro.config import SimConfig
from repro.core import laxity
from repro.core.profiling import KernelProfilingTable
from repro.schedulers.registry import make_scheduler
from repro.sim import (engine_mode, event_core_mode, get_engine_mode,
                       set_engine_mode)
from repro.sim.compute_unit import ComputeUnit
from repro.sim.device import GPUSystem
from repro.sim.dispatcher import WGDispatcher
from repro.sim.energy import EnergyMeter
from repro.sim.engine import EventHandle, Simulator
from repro.sim.job import Job
from repro.sim.trace import TraceRecorder
from repro.units import US
from repro.workloads.registry import build_workload

from conftest import make_descriptor, make_job
from strategies import scheduler_names, workloads
from test_figure3_scenario import (GOLDEN_COMPLETIONS, GOLDEN_TOLERANCE,
                                   run_figure3)


def rebuild(template):
    """Fresh Job objects from a (possibly already-run) template workload."""
    return [Job(job_id=j.job_id, benchmark=j.benchmark,
                descriptors=[k.descriptor for k in j.kernels],
                arrival=j.arrival, deadline=j.deadline,
                user_priority=j.user_priority,
                dependencies=j.dependencies)
            for j in template]


def run_traced(template, scheduler, optimized):
    """One full run under the given engine mode, with WG-level tracing."""
    with engine_mode(optimized):
        trace = TraceRecorder(wg_events=True)
        system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                           trace=trace)
        system.submit_workload(rebuild(template))
        metrics = system.run()
    return (dataclasses.asdict(metrics), trace.events,
            system.sim.events_committed, system.sim.now)


class TestEngineModeSwitch:
    def test_flags_flip_together_and_restore(self):
        assert get_engine_mode()
        with engine_mode(False):
            assert not get_engine_mode()
            assert Simulator.optimized is False
            assert ComputeUnit.grouped is False
            assert WGDispatcher.batched is False
            assert Job.fast_ready is False
            assert laxity.MEMOIZED is False
            assert laxity.EPOCH_GATED is False
        assert get_engine_mode()
        assert Simulator.optimized is True
        assert laxity.EPOCH_GATED is True

    def test_context_restores_mixed_flags(self):
        set_engine_mode(True)
        Job.fast_ready = False
        try:
            with engine_mode(True):
                assert Job.fast_ready is True
            assert Job.fast_ready is False
            assert not get_engine_mode()
        finally:
            set_engine_mode(True)


class TestWholeSystemDifferential:
    """Optimized vs seed engine: event-for-event identical runs."""

    @given(jobs=workloads(max_jobs=5), scheduler=scheduler_names)
    def test_random_workloads_bit_identical(self, jobs, scheduler):
        fast = run_traced(jobs, scheduler, optimized=True)
        seed = run_traced(jobs, scheduler, optimized=False)
        assert fast[0] == seed[0]          # metrics, per-job outcomes
        assert fast[1] == seed[1]          # full trace incl. WG placements
        assert fast[2] == seed[2]          # committed events
        assert fast[3] == seed[3]          # final clock

    def test_reference_cell_bit_identical(self):
        gpu = SimConfig().gpu
        jobs = build_workload("LSTM", "high", num_jobs=16, seed=7, gpu=gpu)
        fast = run_traced(jobs, "LAX", optimized=True)
        seed = run_traced(jobs, "LAX", optimized=False)
        assert fast == seed

    def test_seed_engine_matches_figure3_golden_pins(self):
        """The legacy mode reproduces the pinned Figure-3 timeline too."""
        with engine_mode(False):
            for scheduler, kwargs in (("LAX", {"enable_admission": False}),
                                      ("SJF", {})):
                outcomes = run_figure3(scheduler, **kwargs)
                for job_id, expected in GOLDEN_COMPLETIONS[scheduler].items():
                    actual = outcomes[job_id].completion
                    assert abs(actual - expected) <= GOLDEN_TOLERANCE, (
                        scheduler, job_id)


# ----------------------------------------------------------------------
# Compute-unit twins
# ----------------------------------------------------------------------

def make_cu(completions):
    """A lone CU whose completion sink appends (name, index, now)."""
    config = SimConfig()
    sim = Simulator()
    energy = EnergyMeter(config.energy)
    cu = ComputeUnit(0, sim, config.gpu, energy,
                     lambda kernel, now: completions.append(
                         (kernel.name, kernel.index, now)))
    return sim, cu


def active_kernel(desc, job_id=0):
    """A kernel instance in ACTIVE phase, ready to receive WGs."""
    job = Job(job_id=job_id, benchmark="unit", descriptors=[desc],
              arrival=0, deadline=None)
    job.released_kernels = 1
    kernel = job.kernels[0]
    kernel.mark_active(0)
    return kernel


#: Heterogeneous CU-concurrency mix; the trailing c=4 kernel repeats the
#: leading run's concurrency non-consecutively, exercising the run-length
#: grouping's recompute-on-boundary case.
_MIX = (
    ("a", 4, 10 * US, 3),    # (name, cu_concurrency, wg_work, wgs)
    ("b", 10, 7 * US, 4),
    ("c", 2, 5 * US, 2),
    ("d", 4, 9 * US, 2),
)


def run_mix_sequence(optimized):
    """Drive one CU through a heterogeneous residency timeline."""
    with engine_mode(optimized):
        completions = []
        sim, cu = make_cu(completions)
        kernels = [active_kernel(
            make_descriptor(name=name, num_wgs=wgs, wg_work=work,
                            cu_concurrency=conc), job_id=i)
            for i, (name, conc, work, wgs) in enumerate(_MIX)]
        for _ in range(3):
            cu.start_wg(kernels[0])
        sim.run_until(4 * US)             # partial progress at mixed rates
        for _ in range(4):
            cu.start_wg(kernels[1])
        for _ in range(2):
            cu.start_wg(kernels[2])
        sim.run_until(6 * US)
        for _ in range(2):
            cu.start_wg(kernels[3])
        sim.run()
    return completions, cu.work_done, sim.now, sim.events_fired


class TestComputeUnitTwins:
    def test_grouped_math_bit_identical_to_per_wg(self):
        assert run_mix_sequence(optimized=True) == run_mix_sequence(
            optimized=False)

    def test_issue_wgs_matches_start_wg_loop(self):
        desc = make_descriptor(name="batch", num_wgs=8, cu_concurrency=4,
                               bytes_per_wg=64)
        loop_completions, batch_completions = [], []
        sim_a, cu_a = make_cu(loop_completions)
        sim_b, cu_b = make_cu(batch_completions)
        kernel_a = active_kernel(desc)
        kernel_b = active_kernel(desc)
        for _ in range(6):
            cu_a.start_wg(kernel_a)
        cu_b.issue_wgs(kernel_b, 6)
        cu_b.flush_issue()
        for cu in (cu_a, cu_b):
            assert cu.num_residents == 6
        assert cu_a.used_threads == cu_b.used_threads
        assert cu_a.used_wavefronts == cu_b.used_wavefronts
        assert cu_a.used_vgpr == cu_b.used_vgpr
        assert cu_a.used_lds == cu_b.used_lds
        assert cu_a._bw_demand == cu_b._bw_demand
        assert ([wg.remaining for wg in cu_a._residents]
                == [wg.remaining for wg in cu_b._residents])
        assert cu_a._timer.when == cu_b._timer.when
        assert kernel_a.wgs_issued == kernel_b.wgs_issued == 6
        assert sim_a.run() == sim_b.run()
        assert loop_completions == batch_completions
        assert cu_a.work_done == cu_b.work_done

    def test_issue_wgs_zero_count_is_a_noop(self):
        sim, cu = make_cu([])
        cu.issue_wgs(active_kernel(make_descriptor()), 0)
        cu.flush_issue()
        assert cu.num_residents == 0
        assert sim.pending_events == 0


class TestBatchCapacity:
    @given(threads=st.sampled_from([64, 256, 640, 1024]),
           vgpr=st.sampled_from([0, 4096, 48 * 1024]),
           lds=st.sampled_from([0, 1024, 20 * 1024]),
           concurrency=st.integers(min_value=1, max_value=10),
           prefill=st.integers(min_value=0, max_value=3),
           backfill=st.booleans())
    def test_capacity_counts_consecutive_admissions(
            self, threads, vgpr, lds, concurrency, prefill, backfill):
        _, cu = make_cu([])
        if prefill:
            occupant = active_kernel(
                make_descriptor(name="occ", num_wgs=8, threads_per_wg=256,
                                cu_concurrency=6), job_id=99)
            for _ in range(prefill):
                cu.start_wg(occupant)
        desc = make_descriptor(name="probe", num_wgs=200,
                               threads_per_wg=threads, vgpr=vgpr, lds=lds,
                               cu_concurrency=concurrency)
        cap = cu.batch_capacity(desc, backfill_only=backfill)
        kernel = active_kernel(desc, job_id=1)
        admitted = 0
        # The seed dispatcher's per-WG admission loop, verbatim semantics.
        while cu.can_accept(desc) and (
                not backfill
                or cu.free_full_rate_slots(desc.cu_concurrency) > 0):
            cu.start_wg(kernel)
            admitted += 1
        assert admitted == cap

    def test_oversized_wg_has_zero_capacity(self):
        _, cu = make_cu([])
        desc = make_descriptor(name="huge", threads_per_wg=4096)
        assert cu.batch_capacity(desc) == 0
        assert not cu.can_accept(desc)


# ----------------------------------------------------------------------
# Event heap
# ----------------------------------------------------------------------

def live_heap_count(sim):
    """Live (non-cancelled) events across the engine's storage: the
    binary heap plus, under the event-core calendar queue, the current
    bucket's overflow heap and the future buckets."""
    entries = list(sim._heap)
    entries += [handle for _, _, handle in sim._cur_sorted[sim._cur_pos:]]
    entries += [handle for _, _, handle in sim._cur_extra]
    for bucket in sim._buckets.values():
        entries += [handle for _, _, handle in bucket]
    return sum(1 for event in entries if not event.cancelled)


class TestEventHeap:
    def test_pending_events_matches_heap_scan(self):
        sim = Simulator()
        handles = [sim.schedule((i * 7) % 13, lambda: None)
                   for i in range(60)]
        assert sim.pending_events == live_heap_count(sim) == 60
        for handle in handles[::3]:
            handle.cancel()
            handle.cancel()              # idempotent
            assert sim.pending_events == live_heap_count(sim)
        for _ in range(25):
            sim.step()
            assert sim.pending_events == live_heap_count(sim)
        sim.run()
        assert sim.pending_events == live_heap_count(sim) == 0

    def test_compaction_shrinks_heap_and_preserves_order(self):
        # Compaction is a binary-heap behaviour; the event-core calendar
        # queue skips tombstones lazily at pop instead, so pin the heap
        # storage explicitly.
        with engine_mode(True), event_core_mode(False):
            sim = Simulator()
            fired = []
            handles = [sim.schedule(delay, fired.append, delay)
                       for delay in range(1, 301)]
            for handle in handles[:200]:
                handle.cancel()
            # 200 of 300 tombstoned: compaction must have kicked in.
            assert len(sim._heap) < 300
            assert sim.pending_events == live_heap_count(sim) == 100
            sim.run()
        assert fired == list(range(201, 301))

    def test_seed_mode_keeps_tombstones_but_same_results(self):
        with engine_mode(False):
            sim = Simulator()
            fired = []
            handles = [sim.schedule(delay, fired.append, delay)
                       for delay in range(1, 301)]
            for handle in handles[:200]:
                handle.cancel()
            assert len(sim._heap) == 300   # no compaction in seed mode
            assert sim.pending_events == live_heap_count(sim) == 100
            sim.run()
        assert fired == list(range(201, 301))

    def test_run_until_drains_tombstones_consistently(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 10)
        doomed = sim.schedule(20, fired.append, 20)
        sim.schedule(30, fired.append, 30)
        doomed.cancel()
        sim.run_until(25)
        assert fired == [10]
        assert sim.pending_events == live_heap_count(sim) == 1
        sim.run()
        assert fired == [10, 30]

    def test_detached_handle_cancel(self):
        handle = EventHandle(5, 0, lambda: None, ())
        handle.cancel()
        handle.cancel()
        assert handle.cancelled


# ----------------------------------------------------------------------
# Job ready-cursor and profiler batch hook
# ----------------------------------------------------------------------

def ready_in_mode(job, optimized):
    with engine_mode(optimized):
        return job.ready_kernels()


def drain_kernel(kernel):
    for _ in range(kernel.num_wgs):
        kernel.note_wg_issued(0)
    for _ in range(kernel.num_wgs):
        kernel.note_wg_completed(0)


class TestFastReadyCursor:
    def test_chain_job_matches_scan_at_every_stage(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=2)] * 3)
        assert ready_in_mode(job, True) == ready_in_mode(job, False) == []
        job.released_kernels = 2
        assert (ready_in_mode(job, True) == ready_in_mode(job, False)
                == [job.kernels[0]])
        job.kernels[0].mark_active(0)
        assert ready_in_mode(job, True) == ready_in_mode(job, False) == []
        drain_kernel(job.kernels[0])
        assert (ready_in_mode(job, True) == ready_in_mode(job, False)
                == [job.kernels[1]])
        job.kernels[1].mark_active(0)
        drain_kernel(job.kernels[1])
        # Kernel 2 is done but not yet released: neither path returns it.
        assert ready_in_mode(job, True) == ready_in_mode(job, False) == []
        job.released_kernels = 3
        assert (ready_in_mode(job, True) == ready_in_mode(job, False)
                == [job.kernels[2]])

    def test_dag_job_uses_the_full_scan_in_both_modes(self):
        job = Job(job_id=0, benchmark="DAG",
                  descriptors=[make_descriptor(num_wgs=2)] * 3,
                  arrival=0, deadline=None,
                  dependencies={1: (), 2: (0, 1)})
        job.released_kernels = 3
        expected = [job.kernels[0], job.kernels[1]]
        assert (ready_in_mode(job, True) == ready_in_mode(job, False)
                == expected)


class TestProfilerBatchHook:
    @staticmethod
    def snapshot(table, name):
        stats = table._stats[name]
        return (stats.in_flight, stats.last_transition, stats.busy_ticks,
                stats.window_completed, stats.ewma_rate,
                stats.published_rate, stats.total_completed)

    def test_on_wgs_issued_equals_repeated_on_wg_issued(self):
        single = KernelProfilingTable(window=100 * US)
        batched = KernelProfilingTable(window=100 * US)
        for _ in range(3):
            single.on_wg_issued("k", 10)
        batched.on_wgs_issued("k", 3, 10)
        assert self.snapshot(single, "k") == self.snapshot(batched, "k")
        for now in (5 * US, 8 * US, 150 * US):
            single.record_wg_completion("k", now)
            batched.record_wg_completion("k", now)
            assert self.snapshot(single, "k") == self.snapshot(batched, "k")
            assert (single.completion_rate("k", now)
                    == batched.completion_rate("k", now))

    def test_zero_count_is_a_noop(self):
        table = KernelProfilingTable(window=100 * US)
        table.on_wgs_issued("k", 0, 10)
        assert table.known_kernels() == 0
