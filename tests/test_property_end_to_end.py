"""Property-based end-to-end tests: random workloads, universal invariants.

Hypothesis generates arbitrary small workloads (mixed kernel shapes,
arrival patterns, deadlines, optional DAG edges and deadline-less jobs)
and runs them through representative schedulers; the conservation laws
must hold for every draw.
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SimConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import Job, JobState
from repro.units import MS, US

from conftest import make_descriptor

# -- strategies -------------------------------------------------------------

kernel_shapes = st.builds(
    make_descriptor,
    name=st.sampled_from(["alpha", "beta", "gamma"]),
    num_wgs=st.integers(min_value=1, max_value=12),
    threads_per_wg=st.sampled_from([64, 256, 640]),
    wg_work=st.integers(min_value=1, max_value=200).map(lambda u: u * US),
    cu_concurrency=st.sampled_from([4, 8]),
)


@st.composite
def job_lists(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for job_id in range(count):
        num_kernels = draw(st.integers(min_value=1, max_value=4))
        descriptors = [draw(kernel_shapes) for _ in range(num_kernels)]
        deadline = draw(st.one_of(
            st.none(),
            st.integers(min_value=50, max_value=5000).map(lambda u: u * US)))
        arrival = draw(st.integers(min_value=0, max_value=500)) * US
        jobs.append(Job(job_id=job_id, benchmark="RAND",
                        descriptors=descriptors, arrival=arrival,
                        deadline=deadline))
    return jobs


SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def run(jobs, scheduler):
    system = GPUSystem(make_scheduler(scheduler), SimConfig())
    system.submit_workload(jobs)
    return system, system.run()


class TestRandomWorkloads:
    @SETTINGS
    @given(jobs=job_lists())
    def test_rr_conserves_work(self, jobs):
        system, metrics = run(jobs, "RR")
        for job in jobs:
            assert job.state is JobState.COMPLETED
        total_wgs = sum(job.total_wgs for job in jobs)
        assert metrics.wg_completions == total_wgs
        executed = sum(cu.work_done for cu in system.dispatcher.cus)
        expected = sum(k.descriptor.total_work
                       for job in jobs for k in job.kernels)
        # Completion timers fire on integer ticks, so each WG may account
        # up to one extra tick of progress; never less than its work.
        assert expected - 1e-6 <= executed <= expected + total_wgs + 1e-6

    @SETTINGS
    @given(jobs=job_lists())
    def test_lax_terminates_everything(self, jobs):
        system, metrics = run(jobs, "LAX")
        for job in jobs:
            assert job.is_done
            if job.deadline is None:
                # Best-effort jobs are never rejected.
                assert job.state is JobState.COMPLETED
        assert system.pool.num_bound == 0
        for cu in system.dispatcher.cus:
            assert cu.num_residents == 0

    @SETTINGS
    @given(jobs=job_lists())
    def test_latencies_bounded_below_by_isolated_time(self, jobs):
        system, metrics = run(jobs, "RR")
        outcomes = {o.job_id: o for o in metrics.outcomes}
        gpu = system.config.gpu
        for job in jobs:
            outcome = outcomes[job.job_id]
            assert outcome.latency >= job.isolated_time(gpu)

    @SETTINGS
    @given(jobs=job_lists(), data=st.data())
    def test_deadline_verdicts_are_consistent(self, jobs, data):
        _, metrics = run(jobs, "LAX")
        for outcome in metrics.outcomes:
            if outcome.met_deadline:
                assert outcome.deadline is not None
                assert outcome.completion is not None
                assert outcome.latency <= outcome.deadline
            if outcome.accepted is False:
                assert not outcome.met_deadline
