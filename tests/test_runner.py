"""The sweep Runner: determinism, failure capture, progress, pooling.

The crash/error/timeout tests monkeypatch module globals in
``repro.harness.runner`` and rely on the fork start method (Linux) to
carry those patches into pool workers.
"""

import json
import os
import time

import pytest

from repro.errors import HarnessError
from repro.harness import (CellFailure, RunOptions, Runner, SweepSpec,
                           clear_cache)
from repro.harness.experiment import ExperimentSpec
from repro.harness.runner import _pool_worker
from repro.telemetry import TelemetryHub
from repro.validation import InvariantViolation


def small_sweep(**overrides):
    fields = dict(benchmarks=("IPV6",), schedulers=("RR", "LAX"),
                  rate_levels=("high",), seeds=(1, 2), num_jobs=8)
    fields.update(overrides)
    return SweepSpec(**fields)


# Module-level so pool workers can unpickle them by reference (the test
# process forks, so the module is present in the child).

def _crash_on_seed_two(spec, config, validate, modes_state=None):
    if spec.seed == 2:
        os._exit(13)
    return _pool_worker(spec, config, validate, modes_state)


def _error_run_cell(real):
    def run_cell(spec, **kwargs):
        if spec.seed == 2:
            raise ValueError("injected failure")
        return real(spec, **kwargs)
    return run_cell


def _violating_run_cell(real):
    def run_cell(spec, **kwargs):
        if spec.seed == 2:
            raise InvariantViolation(
                "cu_capacity", "too many workgroups", time=42,
                context={"cu": 3})
        return real(spec, **kwargs)
    return run_cell


def _sleepy_run_cell(real):
    def run_cell(spec, **kwargs):
        if spec.seed == 2:
            time.sleep(30)
        return real(spec, **kwargs)
    return run_cell


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        sweep = small_sweep()
        clear_cache(persistent=False)
        # Parallel first: forked workers must not inherit a warm memo.
        parallel = Runner(workers=2, cache=False).run(
            sweep, RunOptions(validate=True))
        serial = Runner(workers=1, cache=False).run(
            sweep, RunOptions(validate=True))
        assert parallel.ok and serial.ok
        assert list(parallel.results) == sweep.cells()
        assert (json.dumps(parallel.records(), sort_keys=True)
                == json.dumps(serial.records(), sort_keys=True))

    def test_results_ordered_by_sweep_not_completion(self):
        sweep = small_sweep(schedulers=("LAX", "RR"), seeds=(2, 1))
        outcome = Runner(workers=2, cache=False).run(sweep)
        assert list(outcome.results) == sweep.cells()

    def test_pool_validate_produces_diagnostics(self):
        outcome = Runner(workers=2, cache=False).run(
            small_sweep(seeds=(1,)), RunOptions(validate=True))
        for result in outcome.results.values():
            validation = result.diagnostics["validation"]
            assert validation["violations"] == []


class TestFailureCapture:
    def test_worker_crash_becomes_cell_failure(self, monkeypatch):
        monkeypatch.setattr("repro.harness.runner._pool_worker",
                            _crash_on_seed_two)
        sweep = small_sweep(schedulers=("RR",), seeds=(1, 2, 3))
        outcome = Runner(workers=2, cache=False).run(sweep)
        crashed = [spec for spec in sweep.cells() if spec.seed == 2][0]
        failure = outcome.failures[crashed]
        assert failure.kind == "crash"
        assert failure.attempts == 2  # original + one isolated retry
        # The healthy neighbours still produced results.
        assert {spec.seed for spec in outcome.results} == {1, 3}

    def test_pool_error_becomes_cell_failure(self, monkeypatch):
        from repro.harness import runner as runner_module
        monkeypatch.setattr(runner_module, "run_cell",
                            _error_run_cell(runner_module.run_cell))
        sweep = small_sweep(schedulers=("RR",))
        outcome = Runner(workers=2, cache=False).run(sweep)
        [failure] = outcome.failures.values()
        assert failure.kind == "error"
        assert "ValueError: injected failure" in failure.message
        assert "injected failure" in failure.traceback
        assert failure.exception is None  # crossed a process boundary
        assert len(outcome.results) == 1
        with pytest.raises(HarnessError, match="1 cell\\(s\\) failed"):
            outcome.raise_failures()

    def test_pool_invariant_violation_keeps_context(self, monkeypatch):
        from repro.harness import runner as runner_module
        monkeypatch.setattr(runner_module, "run_cell",
                            _violating_run_cell(runner_module.run_cell))
        outcome = Runner(workers=2, cache=False).run(
            small_sweep(schedulers=("RR",)))
        [failure] = outcome.failures.values()
        assert failure.kind == "invariant"
        assert failure.context == {"cu": 3}
        assert "cu_capacity" in failure.message

    def test_serial_failure_keeps_original_exception(self, monkeypatch):
        from repro.harness import runner as runner_module
        monkeypatch.setattr(runner_module, "run_cell",
                            _violating_run_cell(runner_module.run_cell))
        outcome = Runner(workers=1, cache=False).run(
            small_sweep(schedulers=("RR",)))
        [failure] = outcome.failures.values()
        assert failure.kind == "invariant"
        assert isinstance(failure.exception, InvariantViolation)
        with pytest.raises(InvariantViolation):
            outcome.raise_failures()

    def test_timeout_becomes_cell_failure(self, monkeypatch):
        from repro.harness import runner as runner_module
        monkeypatch.setattr(runner_module, "run_cell",
                            _sleepy_run_cell(runner_module.run_cell))
        sweep = small_sweep(schedulers=("RR",))
        outcome = Runner(workers=2, cache=False, timeout=2.0).run(sweep)
        [failure] = outcome.failures.values()
        assert failure.kind == "timeout"
        assert len(outcome.results) == 1

    def test_ok_and_describe(self):
        outcome = Runner(workers=1, cache=False).run(
            small_sweep(schedulers=("RR",), seeds=(1,)))
        assert outcome.ok
        outcome.raise_failures()  # no-op when everything succeeded
        assert "1 cells, 1 computed, 0 cached, 0 failed" \
            in outcome.describe()


class TestGuards:
    def test_live_sinks_rejected_in_pool_mode(self):
        hub = TelemetryHub()
        with pytest.raises(HarnessError, match="in-process"):
            Runner(workers=2).run(small_sweep(),
                                  RunOptions(telemetry=hub))

    def test_live_sinks_fine_serially(self):
        hub = TelemetryHub()
        outcome = Runner(workers=1, cache=False).run(
            small_sweep(schedulers=("RR",), seeds=(1,)),
            RunOptions(telemetry=hub))
        assert outcome.ok

    def test_worker_and_retry_validation(self):
        with pytest.raises(HarnessError):
            Runner(workers=0)
        with pytest.raises(HarnessError):
            Runner(retries=-1)


class TestProgress:
    def test_callback_sees_every_cell_in_order(self):
        seen = []
        runner = Runner(workers=1, cache=False,
                        on_progress=lambda done, total, spec, source:
                        seen.append((done, total, source)))
        sweep = small_sweep(schedulers=("RR",))
        runner.run(sweep)
        assert [done for done, _, _ in seen] == [1, 2]
        assert all(total == 2 for _, total, _ in seen)
        assert all(source == "run" for _, _, source in seen)

    def test_cache_hits_reported_as_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        sweep = small_sweep(schedulers=("RR",))
        Runner(workers=1, cache_dir=cache_dir).run(sweep)
        seen = []
        Runner(workers=1, cache_dir=cache_dir,
               on_progress=lambda done, total, spec, source:
               seen.append(source)).run(sweep)
        assert seen == ["cache", "cache"]

    def test_telemetry_instruments(self):
        hub = TelemetryHub()
        runner = Runner(workers=1, cache=False, telemetry=hub)
        runner.run(small_sweep(schedulers=("RR",)))
        registry = hub.registry
        assert registry.gauge("sweep_cells").value == 2
        assert registry.counter("sweep_cells_completed_total").value == 2
        assert registry.counter("sweep_cache_hits_total").value == 0
        assert registry.counter("sweep_cell_failures_total").value == 0


class TestRunnerRunCell:
    def test_single_cell_convenience(self, tmp_path):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", num_jobs=8)
        runner = Runner(workers=1, cache_dir=str(tmp_path / "cache"))
        first = runner.run_cell(spec)
        assert first.metrics.num_jobs == 8
        # Second call is served from the persistent store.
        again = Runner(workers=1,
                       cache_dir=str(tmp_path / "cache")).run_cell(spec)
        assert (again.metrics.jobs_meeting_deadline
                == first.metrics.jobs_meeting_deadline)

    def test_failure_raises(self, monkeypatch):
        from repro.harness import runner as runner_module
        monkeypatch.setattr(runner_module, "run_cell",
                            _error_run_cell(runner_module.run_cell))
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR",
                              num_jobs=8, seed=2)
        with pytest.raises(ValueError, match="injected failure"):
            Runner(workers=1, cache=False).run_cell(spec)


def test_cell_failure_describe():
    spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", num_jobs=8)
    failure = CellFailure(spec=spec, kind="error", message="boom")
    assert "IPV6/RR" in failure.describe()
    assert "boom" in failure.describe()
