"""Differential + unit tests for the epoch-gated scheduler tick (PR 5).

The gated LAX tick (``laxity.EPOCH_GATED``) must be **bit-identical** to
the seed tick: same priorities, same admission verdicts, same WG-level
trace, same clock.  Families here:

* **Whole-system differential** — random workloads through LAX and the
  LAX-PREMA hybrid, run once per scheduler-tick mode with WG tracing;
  metrics, traces, admission counters and final clocks must be equal.
* **RemainingTimeCache unit tests** — invalidation on WG completion, on
  rate publication, volatile-type recompute, stream-append pickup
  through the CP, and forget() pruning.
* **Profiling-table version counters** — ``rank_epoch`` / ``mutations``
  / ``unpublished`` / ``changed_kernels_since`` semantics.
* **Fleet mini-cell** — a scaled-down large-fleet cell stays identical
  across modes and reports sane tick accounting.
"""

import dataclasses

from hypothesis import given, settings

from repro.config import SimConfig
from repro.core import laxity
from repro.core.calibration import warm_table
from repro.core.laxity import RemainingTimeCache, estimate_remaining_time
from repro.core.profiling import KernelProfilingTable
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.modes import scheduler_tick_mode
from repro.sim.trace import TraceRecorder
from repro.units import US
from repro.workloads.fleet import (build_fleet_jobs, fleet_config,
                                   fleet_warm_rates, peak_concurrent_jobs)

from conftest import make_descriptor, make_job
from strategies import workloads
from test_engine_hotpath import rebuild


def run_tick_traced(template, scheduler, gated, **scheduler_kwargs):
    """One traced run under the given scheduler-tick mode."""
    with scheduler_tick_mode(gated):
        trace = TraceRecorder(wg_events=True)
        system = GPUSystem(make_scheduler(scheduler, **scheduler_kwargs),
                           SimConfig(), trace=trace)
        system.submit_workload(rebuild(template))
        metrics = system.run()
    admission = system.policy.admission
    counters = (None if admission is None else
                (admission.accepted, admission.rejected,
                 admission.fast_accepted, admission.late_rejected))
    return (dataclasses.asdict(metrics), trace.events, counters,
            system.sim.events_fired, system.sim.now)


class TestSchedulerTickDifferential:
    """Gated tick vs seed tick: decision-for-decision identical runs."""

    @settings(deadline=None)
    @given(jobs=workloads(max_jobs=5))
    def test_random_workloads_lax_identical(self, jobs):
        gated = run_tick_traced(jobs, "LAX", gated=True)
        seed = run_tick_traced(jobs, "LAX", gated=False)
        assert gated[0] == seed[0]         # metrics, per-job outcomes
        assert gated[1] == seed[1]         # full trace incl. WG placements
        assert gated[2] == seed[2]         # admission counters
        assert gated[3] == seed[3]         # events fired
        assert gated[4] == seed[4]         # final clock

    @settings(deadline=None)
    @given(jobs=workloads(max_jobs=4))
    def test_random_workloads_hybrid_identical(self, jobs):
        gated = run_tick_traced(jobs, "LAX-PREMA", gated=True)
        seed = run_tick_traced(jobs, "LAX-PREMA", gated=False)
        assert gated == seed

    @settings(deadline=None)
    @given(jobs=workloads(max_jobs=4))
    def test_no_admission_variant_identical(self, jobs):
        gated = run_tick_traced(jobs, "LAX", gated=True,
                                enable_admission=False)
        seed = run_tick_traced(jobs, "LAX", gated=False,
                               enable_admission=False)
        assert gated == seed

    def test_tick_stats_only_accumulate_in_gated_mode(self):
        jobs = [make_job(job_id=i, arrival=i * 10 * US, deadline=20_000 * US,
                         descriptors=[make_descriptor(
                             num_wgs=2, wg_work=150 * US)] * 4)
                for i in range(4)]
        with scheduler_tick_mode(False):
            system = GPUSystem(make_scheduler("LAX"), SimConfig())
            system.submit_workload(rebuild(jobs))
            system.run()
        assert system.policy.tick_stats.ticks == 0
        with scheduler_tick_mode(True):
            system = GPUSystem(make_scheduler("LAX"), SimConfig())
            system.submit_workload(rebuild(jobs))
            system.run()
        stats = system.policy.tick_stats
        assert stats.ticks > 0
        assert stats.ticks == stats.ticks_elided + stats.ticks_incremental
        assert stats.jobs_ranked >= stats.ticks
        assert stats.walks_reused > 0


def seeded_table(rate=0.001):
    table = KernelProfilingTable(window=100 * US)
    table.seed_rate("k", rate)
    return table


def cached_job(num_wgs=4, kernels=2):
    job = make_job(descriptors=[make_descriptor(num_wgs=num_wgs)] * kernels)
    job.mark_enqueued(0, 0)
    return job


class TestRemainingTimeCache:
    def test_hit_returns_exact_fresh_walk_value(self):
        table = seeded_table()
        cache = RemainingTimeCache(table)
        job = cached_job()
        first = cache.remaining(job, 0)
        assert first == estimate_remaining_time(job, table, 0)
        assert cache.remaining(job, 0) == first
        assert cache.recomputed == 1
        assert cache.reused == 1

    def test_wg_completion_invalidates_through_rank_version(self):
        table = seeded_table()
        cache = RemainingTimeCache(table)
        job = cached_job()
        before = cache.remaining(job, 0)
        kernel = job.kernels[0]
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_completed(10)
        after = cache.remaining(job, 10)
        assert cache.recomputed == 2
        assert after == estimate_remaining_time(job, table, 10)
        assert after < before

    def test_rate_publication_invalidates_through_epoch(self):
        table = seeded_table(rate=0.001)
        cache = RemainingTimeCache(table)
        job = cached_job()
        before = cache.remaining(job, 0)
        table.seed_rate("k", 0.002)   # published change bumps rank_epoch
        after = cache.remaining(job, 0)
        assert cache.recomputed == 2
        assert after == before / 2

    def test_republishing_identical_rate_keeps_the_cache(self):
        table = seeded_table(rate=0.001)
        cache = RemainingTimeCache(table)
        job = cached_job()
        cache.remaining(job, 0)
        table.seed_rate("k", 0.001)   # same value: no epoch bump
        cache.remaining(job, 0)
        assert cache.recomputed == 1
        assert cache.reused == 1

    def test_volatile_types_recompute_every_sync(self):
        # Stats exist but no published rate: the estimate depends on the
        # wall clock, so the cache must refuse to carry it across syncs.
        table = KernelProfilingTable(window=100 * US)
        cache = RemainingTimeCache(table)
        job = cached_job()
        table.on_wg_issued("k", 0)
        table.record_wg_completion("k", 10 * US)
        first = cache.remaining(job, 10 * US)
        assert first == estimate_remaining_time(job, table, 10 * US)
        second = cache.remaining(job, 20 * US)
        assert cache.recomputed == 2   # no reuse across syncs
        assert second == estimate_remaining_time(job, table, 20 * US)

    def test_forget_prunes_value_and_type_index(self):
        table = seeded_table()
        cache = RemainingTimeCache(table)
        job = cached_job()
        cache.remaining(job, 0)
        cache.forget(job)
        assert job.job_id not in cache._values
        assert job.job_id not in cache._types_by_job
        assert job.job_id not in cache._jobs_by_type["k"]

    def test_append_pickup_via_rank_version(self):
        table = seeded_table()
        cache = RemainingTimeCache(table)
        job = cached_job(num_wgs=2, kernels=1)
        before = cache.remaining(job, 0)
        job.append_kernels([make_descriptor(num_wgs=2)])
        after = cache.remaining(job, 0)
        assert cache.recomputed == 2
        assert after == 2 * before


class TestProfilingVersionCounters:
    def test_seed_rate_bumps_epoch_only_on_change(self):
        table = KernelProfilingTable(window=100 * US)
        assert table.rank_epoch == 0
        table.seed_rate("a", 0.01)
        epoch = table.rank_epoch
        assert epoch > 0
        table.seed_rate("a", 0.01)
        assert table.rank_epoch == epoch
        table.seed_rate("a", 0.02)
        assert table.rank_epoch > epoch

    def test_mutations_track_every_state_change(self):
        table = KernelProfilingTable(window=100 * US)
        base = table.mutations
        table.on_wg_issued("a", 0)
        assert table.mutations == base + 1
        table.record_wg_completion("a", 5)
        assert table.mutations == base + 2

    def test_unpublished_counts_volatile_types(self):
        table = KernelProfilingTable(window=100 * US)
        assert table.unpublished == 0
        table.on_wg_issued("a", 0)
        assert table.unpublished == 1
        table.record_wg_completion("a", 10)
        # Rolling past the window publishes the rate: volatile no more.
        table.roll(200 * US)
        assert table.unpublished == 0

    def test_changed_kernels_since_reports_changes_and_volatiles(self):
        table = KernelProfilingTable(window=100 * US)
        table.seed_rate("published", 0.01)
        epoch = table.rank_epoch
        table.on_wg_issued("volatile", 0)
        assert table.changed_kernels_since(epoch) == ["volatile"]
        table.seed_rate("published", 0.02)
        changed = set(table.changed_kernels_since(epoch))
        assert changed == {"published", "volatile"}
        assert table.changed_kernels_since(table.rank_epoch) == ["volatile"]


class TestFleetMiniCell:
    """A scaled-down fleet: identity across modes + sane shape."""

    def small_fleet(self):
        config = fleet_config()
        return (build_fleet_jobs(num_jobs=96, seed=3, gpu=config.gpu,
                                 num_services=8),
                config, fleet_warm_rates(config.gpu, num_services=8))

    def run_mode(self, gated):
        jobs, config, rates = self.small_fleet()
        with scheduler_tick_mode(gated):
            system = GPUSystem(make_scheduler("LAX"), config)
            warm_table(system.profiler, rates)
            system.submit_workload(jobs)
            metrics = system.run()
        return metrics, system

    def test_modes_identical_on_the_mini_cell(self):
        gated_metrics, gated_system = self.run_mode(True)
        seed_metrics, seed_system = self.run_mode(False)
        assert (dataclasses.asdict(gated_metrics)
                == dataclasses.asdict(seed_metrics))
        assert gated_system.sim.events_fired == seed_system.sim.events_fired
        assert gated_system.sim.now == seed_system.sim.now

    def test_mini_cell_is_concurrent_and_mostly_admitted(self):
        metrics, system = self.run_mode(True)
        outcomes = metrics.outcomes
        accepted = sum(1 for o in outcomes if o.accepted)
        assert accepted >= 80
        assert peak_concurrent_jobs(outcomes) >= 80
        stats = system.policy.tick_stats
        assert stats.ticks > 0
        assert stats.walks_reused > stats.walks_recomputed

    def test_peak_concurrency_helper_counts_overlap(self):
        outcome = dataclasses.make_dataclass(
            "O", ["arrival", "completion"])
        outcomes = [outcome(0, 100), outcome(50, 150), outcome(100, 200),
                    outcome(300, None)]
        # Handoff at t=100 is not overlap; the None-completion job is out.
        assert peak_concurrent_jobs(outcomes) == 2


class TestEpochGatedFlag:
    def test_flag_defaults_on_and_context_restores(self):
        assert laxity.EPOCH_GATED
        with scheduler_tick_mode(False):
            assert not laxity.EPOCH_GATED
        assert laxity.EPOCH_GATED
