"""Unit tests for stream inspection (WGList construction)."""

from repro.core.inspection import (build_wg_list, outstanding_wg_list,
                                   total_outstanding_wgs)

from conftest import make_descriptor, make_job


class TestBuildWGList:
    def test_names_and_counts_in_launch_order(self):
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=2),
                                    make_descriptor(name="b", num_wgs=5)])
        assert build_wg_list(job) == [("a", 2), ("b", 5)]

    def test_repeated_kernels_stay_separate(self):
        desc = make_descriptor(name="k", num_wgs=3)
        job = make_job(descriptors=[desc, desc, desc])
        assert build_wg_list(job) == [("k", 3)] * 3


class TestOutstandingWGList:
    def _partially_done_job(self):
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=2),
                                    make_descriptor(name="b", num_wgs=4)])
        kernel = job.kernels[0]
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_completed(1)
        return job

    def test_decrements_completed_wgs(self):
        job = self._partially_done_job()
        assert outstanding_wg_list(job) == [("a", 1), ("b", 4)]

    def test_finished_kernels_drop_out(self):
        job = self._partially_done_job()
        job.kernels[0].note_wg_completed(2)
        assert outstanding_wg_list(job) == [("b", 4)]

    def test_total_outstanding(self):
        job = self._partially_done_job()
        assert total_outstanding_wgs(job) == 5
