"""Unit and property tests for windowed steady-state metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TelemetryError
from repro.metrics.percentile import percentile
from repro.telemetry.sinks import RingBufferSink
from repro.telemetry.windows import WindowedMetrics, WindowStats
from repro.units import MS, SEC

W = 1 * MS


def _complete(windows, now, latency, sensitive=True, met=True):
    windows.on_complete(now, latency, sensitive, met)


class TestWindowBoundaries:
    def test_event_on_edge_opens_next_window(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(W - 1)   # last tick of window 0
        windows.on_arrival(W)       # first tick of window 1
        records = windows.finalize(W + 1)
        assert [r.index for r in records] == [0, 1]
        assert records[0].arrivals == 1
        assert records[1].arrivals == 1
        assert records[0].start == 0 and records[0].end == W
        assert records[1].start == W and records[1].end == 2 * W

    def test_first_window_starts_at_first_event(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(5 * W + 3)
        records = windows.finalize()
        assert [r.index for r in records] == [5]

    def test_gap_windows_emitted_empty(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(0)
        windows.on_arrival(3 * W + 1)
        records = windows.finalize(4 * W)
        assert [r.index for r in records] == [0, 1, 2, 3]
        assert [r.arrivals for r in records] == [1, 0, 0, 1]

    @given(st.lists(st.integers(min_value=0, max_value=20 * MS),
                    min_size=1, max_size=60))
    def test_every_event_lands_in_its_index_window(self, times):
        windows = WindowedMetrics(W)
        for t in sorted(times):
            windows.on_arrival(t)
        records = windows.finalize(max(times) + 1)
        by_index = {r.index: r.arrivals for r in records}
        expected = {}
        for t in times:
            expected[t // W] = expected.get(t // W, 0) + 1
        assert {i: n for i, n in by_index.items() if n} == expected
        assert sum(by_index.values()) == len(times)
        # The series is contiguous: no index holes.
        indices = sorted(by_index)
        assert indices == list(range(indices[0], indices[-1] + 1))


class TestWindowStats:
    def test_rates_and_throughput(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(10)
        windows.on_arrival(20)
        windows.on_admitted(30)
        windows.on_rejected(40)
        _complete(windows, 500, latency=400, met=True)
        _complete(windows, 600, latency=300, met=False)
        stats = windows.finalize(700)[0]
        assert stats.arrivals == 2
        assert stats.admitted == 1
        assert stats.rejected == 1
        assert stats.admission_rate == 0.5
        assert stats.reject_rate == 0.5
        assert stats.completions == 2
        assert stats.sensitive_completions == 2
        assert stats.deadline_met == 1
        assert stats.deadline_missed == 1
        assert stats.slo_attainment == 0.5
        assert stats.throughput_jobs_per_s == 2 / (W / SEC)
        assert stats.partial is True

    def test_empty_window_has_none_rates(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(0)
        windows.on_arrival(2 * W)  # forces empty window 1
        gap = windows.finalize(3 * W)[1]
        assert gap.latency_p50 is None
        assert gap.slo_attainment is None
        assert gap.admission_rate is None
        assert gap.throughput_jobs_per_s == 0.0

    def test_insensitive_completions_not_in_slo(self):
        windows = WindowedMetrics(W)
        _complete(windows, 10, latency=5, sensitive=False, met=False)
        stats = windows.finalize(20)[0]
        assert stats.completions == 1
        assert stats.sensitive_completions == 0
        assert stats.slo_attainment is None

    def test_as_dict_round_trips_json_fields(self):
        windows = WindowedMetrics(W, rolling=2)
        _complete(windows, 10, latency=5)
        record = windows.finalize(20)[0].as_dict()
        assert record["index"] == 0
        assert record["completions"] == 1
        assert "rolling" in record


class TestEstimators:
    def test_exact_estimator_matches_percentile(self):
        windows = WindowedMetrics(W, estimator="exact")
        latencies = [100, 900, 300, 700, 500]
        for i, latency in enumerate(latencies):
            _complete(windows, 10 + i, latency=latency)
        stats = windows.finalize(W)[0]
        assert stats.latency_p50 == percentile(latencies, 50)
        assert stats.latency_p99 == percentile(latencies, 99)
        assert stats.percentiles_exact is True

    def test_reservoir_exact_below_capacity(self):
        windows = WindowedMetrics(W, estimator="reservoir",
                                  reservoir_capacity=16)
        latencies = list(range(100, 1100, 100))
        for i, latency in enumerate(latencies):
            _complete(windows, i, latency=latency)
        stats = windows.finalize(W)[0]
        assert stats.percentiles_exact is True
        assert stats.latency_p50 == percentile(latencies, 50)

    def test_reservoir_sampling_flagged_beyond_capacity(self):
        windows = WindowedMetrics(W, estimator="reservoir",
                                  reservoir_capacity=4)
        for i in range(20):
            _complete(windows, i, latency=i * 10)
        stats = windows.finalize(W)[0]
        assert stats.percentiles_exact is False
        assert 0 <= stats.latency_p50 <= 190

    def test_reservoir_windows_deterministic(self):
        def run():
            windows = WindowedMetrics(W, estimator="reservoir",
                                      reservoir_capacity=4)
            for i in range(50):
                _complete(windows, i * (W // 10), latency=i * 7)
            return [(r.latency_p50, r.latency_p99)
                    for r in windows.finalize()]
        assert run() == run()

    def test_p2_estimator_tracked_per_window(self):
        windows = WindowedMetrics(W, estimator="p2")
        for i in range(200):
            _complete(windows, i, latency=i)
        stats = windows.finalize(W)[0]
        assert stats.percentiles_exact is False
        assert 80 <= stats.latency_p50 <= 120
        assert 190 <= stats.latency_p99 <= 199


class TestRolling:
    def test_trailing_aggregate_spans_k_windows(self):
        windows = WindowedMetrics(W, estimator="exact", rolling=2)
        _complete(windows, 10, latency=100)
        _complete(windows, W + 10, latency=300)
        _complete(windows, 2 * W + 10, latency=500)
        records = windows.finalize(3 * W)
        first, second, third = (r.rolling for r in records)
        assert first["windows"] == 1
        assert second["windows"] == 2
        assert second["completions"] == 2
        assert second["latency_p50"] == percentile([100, 300], 50)
        assert third["latency_p50"] == percentile([300, 500], 50)
        assert third["throughput_jobs_per_s"] == 2 / (2 * W / SEC)

    def test_rolling_off_by_default(self):
        windows = WindowedMetrics(W)
        _complete(windows, 10, latency=5)
        assert windows.finalize(20)[0].rolling is None


class TestLifecycle:
    def test_finalize_idempotent(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(10)
        first = windows.finalize(20)
        assert windows.finalize(20) == first
        assert windows.windows_closed == 1

    def test_partial_flag_only_on_truncated_window(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(10)
        windows.on_arrival(W + 10)
        records = windows.finalize(2 * W)
        assert records[0].partial is False
        assert records[1].partial is False  # ended exactly on the edge
        windows2 = WindowedMetrics(W)
        windows2.on_arrival(10)
        assert windows2.finalize(W // 2)[0].partial is True

    def test_consumers_see_windows_in_order(self):
        seen = []
        windows = WindowedMetrics(W)
        windows.add_consumer(seen.append)
        windows.on_arrival(0)
        windows.on_arrival(2 * W)
        windows.finalize(3 * W)
        assert [s.index for s in seen] == [0, 1, 2]
        assert all(isinstance(s, WindowStats) for s in seen)

    def test_series_extracts_one_metric(self):
        windows = WindowedMetrics(W)
        windows.on_arrival(0)
        windows.on_arrival(W + 1)
        windows.finalize(2 * W)
        assert windows.series("arrivals") == [(0, 1), (W, 1)]

    def test_custom_sink_receives_records(self):
        sink = RingBufferSink(capacity=1)
        windows = WindowedMetrics(W, sink=sink)
        windows.on_arrival(0)
        windows.on_arrival(2 * W)
        windows.finalize(3 * W)
        assert windows.windows_closed == 3
        assert sink.total == 3
        assert len(windows.records) == 1  # retention bounded by the sink

    def test_occupancy_probe_sampled_at_close(self):
        calls = []
        windows = WindowedMetrics(
            W, occupancy_probe=lambda: calls.append(1) or 42)
        windows.on_arrival(0)
        stats = windows.finalize(W)[0]
        assert stats.occupancy_wgs == 42
        assert len(calls) == 1


class TestValidation:
    def test_window_ticks_must_be_positive(self):
        with pytest.raises(TelemetryError):
            WindowedMetrics(0)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(TelemetryError, match="unknown estimator"):
            WindowedMetrics(W, estimator="tdigest")

    def test_rolling_must_be_at_least_one(self):
        with pytest.raises(TelemetryError):
            WindowedMetrics(W, rolling=0)


class TestStreamedComposition:
    """--window + --stream: windowed metrics over a retired-job run.

    Retirement drops per-job state at terminal transitions; the window
    hooks fire from the collector *before* the drop, so the windowed
    series is complete while the run's footprint stays O(live + window).
    """

    def _streamed_windowed(self, num_jobs=400, slo=False):
        import io

        from repro.config import SimConfig
        from repro.schedulers.registry import make_scheduler
        from repro.sim.device import GPUSystem
        from repro.sim.modes import event_core_mode
        from repro.telemetry import TelemetryHub
        from repro.workloads.streaming import SUSTAINED_RATES, sustained_source

        stream = io.StringIO() if slo else None
        hub = TelemetryHub(window=W, slo_monitor=slo, slo_stream=stream)
        with event_core_mode(True):
            system = GPUSystem(make_scheduler("LAX"), SimConfig(),
                               telemetry=hub, retire=True)
            system.submit_stream(
                sustained_source(SUSTAINED_RATES["high"]).jobs(),
                max_jobs=num_jobs)
            metrics = system.run()
        return hub, metrics, stream

    def test_windows_complete_over_retired_stream(self):
        hub, metrics, _ = self._streamed_windowed()
        records = hub.windows.records
        assert records, "the run spans at least one window"
        assert sum(r.arrivals for r in records) == metrics.num_jobs
        assert (sum(r.completions for r in records)
                == metrics.num_jobs - metrics.jobs_rejected)
        assert sum(r.rejected for r in records) == metrics.jobs_rejected
        # Contiguous series: retirement must not drop window closes.
        indices = [r.index for r in records]
        assert indices == list(range(indices[0], indices[-1] + 1))

    def test_slo_monitor_streams_over_retired_stream(self):
        hub, _, stream = self._streamed_windowed(slo=True)
        lines = [ln for ln in stream.getvalue().splitlines() if ln]
        assert len(lines) == hub.windows.windows_closed
        assert all("slo=" in line for line in lines)

    def test_window_state_is_bounded_by_window_count(self):
        """O(window) memory: retained state is the closed records plus
        one live window — never per-job."""
        hub, metrics, _ = self._streamed_windowed(num_jobs=600)
        assert metrics.num_jobs == 600
        assert len(hub.windows.records) == hub.windows.windows_closed
        assert hub.windows.windows_closed < 50  # windows, not jobs
