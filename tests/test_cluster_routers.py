"""Router registry + conformance battery.

Every registered router must survive three canonical traffic shapes —
a burst (everything arrives at once), an idle fleet (arrivals so far
apart every queue drains), and full saturation (arrivals far beyond
fleet capacity) — without ever violating the routed-exactly-once
invariant, emitting an out-of-range device index, or rejecting a
latency-insensitive job.
"""

from __future__ import annotations

import pytest

from repro.cluster import (REJECTED, ROUTERS, ClusterSystem,
                           LaxityAwareRouter, LeastLoadedRouter,
                           PassThroughRouter, PowerOfTwoRouter,
                           RoundRobinRouter, Router, make_router,
                           router_names)
from repro.config import SimConfig
from repro.errors import ConfigError, SchedulingError, TelemetryError
from repro.telemetry.events import DECISION_SCHEMAS, DecisionLog
from repro.units import MS, US
from tests.conftest import make_job, make_jobs


def _fleet_size(name: str) -> int:
    return 1 if name == "pass-through" else 3


def _burst(count=24):
    """Everything lands on the same tick."""
    return [make_job(job_id=i, arrival=0, deadline=5 * MS)
            for i in range(count)]


def _idle_fleet(count=12):
    """Arrivals so far apart every queue drains in between."""
    return [make_job(job_id=i, arrival=i * 50 * MS, deadline=5 * MS)
            for i in range(count)]


def _saturated(count=300):
    """Arrivals far beyond what the fleet can drain before deadlines."""
    return [make_job(job_id=i, arrival=i, deadline=50 * US)
            for i in range(count)]


SCENARIOS = {
    "burst": _burst,
    "idle_fleet": _idle_fleet,
    "saturated": _saturated,
}


class TestRegistry:
    def test_registry_contents(self):
        assert set(router_names()) == {"pass-through", "round-robin",
                                       "least-loaded", "power-of-two",
                                       "laxity"}
        assert router_names() == sorted(router_names())
        assert ROUTERS["pass-through"] is PassThroughRouter
        assert ROUTERS["round-robin"] is RoundRobinRouter
        assert ROUTERS["least-loaded"] is LeastLoadedRouter
        assert ROUTERS["power-of-two"] is PowerOfTwoRouter
        assert ROUTERS["laxity"] is LaxityAwareRouter

    def test_make_router_unknown_name(self):
        with pytest.raises(SchedulingError, match="unknown router"):
            make_router("fifo", num_devices=2)

    def test_every_registered_router_constructs(self):
        for name in router_names():
            router = make_router(name, num_devices=_fleet_size(name))
            assert isinstance(router, Router)
            assert router.name == name

    def test_pass_through_requires_single_device(self):
        with pytest.raises(ConfigError, match="single-device only"):
            make_router("pass-through", num_devices=2)


class TestConformance:
    @pytest.mark.parametrize("name", sorted(ROUTERS))
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_routed_exactly_once(self, name, scenario):
        num_devices = _fleet_size(name)
        router = make_router(name, num_devices=num_devices)
        jobs = SCENARIOS[scenario]()
        decisions = [router.route(job, job.arrival) for job in jobs]

        assert router.routed == len(jobs)
        assert sum(router.lane_counts) + router.rejected == len(jobs)
        seen = set()
        for decision in decisions:
            assert decision.job_id not in seen
            seen.add(decision.job_id)
            if decision.accepted:
                assert 0 <= decision.device < num_devices
            else:
                assert decision.device == REJECTED
            assert decision.backlog >= 0

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_latency_insensitive_never_rejected(self, name):
        router = make_router(name, num_devices=_fleet_size(name))
        jobs = [make_job(job_id=i, arrival=i, deadline=None)
                for i in range(40)]
        for job in jobs:
            assert not job.is_latency_sensitive
            assert router.route(job, job.arrival).accepted
        assert router.rejected == 0

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_idle_fleet_keeps_queues_empty(self, name):
        router = make_router(name, num_devices=_fleet_size(name))
        for job in _idle_fleet():
            router.route(job, job.arrival)
            for device in range(router.num_devices):
                assert router.queue_depth(device, job.arrival) <= 1

    def test_round_robin_cycles(self):
        router = make_router("round-robin", num_devices=3)
        devices = [router.route(job, 0).device for job in _burst(9)]
        assert devices == [0, 1, 2] * 3

    def test_least_loaded_balances_a_burst(self):
        router = make_router("least-loaded", num_devices=3)
        for job in _burst(9):
            router.route(job, 0)
        assert router.lane_counts == [3, 3, 3]

    def test_laxity_sheds_only_under_saturation(self):
        router = make_router("laxity", num_devices=3)
        for job in _burst():
            router.route(job, 0)
        calm = router.rejected

        router = make_router("laxity", num_devices=3)
        for job in _saturated():
            router.route(job, job.arrival)
        assert calm == 0
        assert router.rejected > 0

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_full_system_run_validates(self, name):
        num_devices = _fleet_size(name)
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=num_devices,
                              router=name, validate=True)
        fleet.submit_workload(make_jobs(30, gap=20 * US))
        metrics = fleet.run()
        assert metrics.router == name
        assert metrics.num_jobs + metrics.router_rejected == 30


class TestDecisionSchema:
    def test_router_decision_schema_registered(self):
        schema = DECISION_SCHEMAS["router_decision"]
        assert {k for k, required in schema.items() if required} == \
            {"job_id", "device", "accepted", "reason"}
        assert {"backlog", "laxity"} <= set(schema)

    def test_unknown_field_rejected(self):
        log = DecisionLog()
        with pytest.raises(TelemetryError, match="unknown field"):
            log.emit(0, "router_decision", "laxity", job_id=1, device=0,
                     accepted=True, reason="round_robin", verdict="ok")

    def test_missing_required_field_rejected(self):
        log = DecisionLog()
        with pytest.raises(TelemetryError):
            log.emit(0, "router_decision", "laxity", job_id=1, device=0,
                     accepted=True)
