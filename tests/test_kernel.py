"""Unit tests for kernel descriptors and launch instances."""

import pytest

from repro.config import GPUConfig
from repro.errors import ConfigError, SimulationError
from repro.sim.kernel import KernelDescriptor, KernelPhase

from conftest import make_descriptor, make_job


class TestDescriptorValidation:
    def test_valid_descriptor(self):
        desc = make_descriptor(num_wgs=8)
        assert desc.num_wgs == 8

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            make_descriptor(name="")

    @pytest.mark.parametrize("field,value", [
        ("num_wgs", 0), ("threads_per_wg", 0), ("wg_work", 0),
        ("vgpr", -1), ("lds", -1), ("context", -1), ("cu_concurrency", 0)])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ConfigError):
            make_descriptor(**{field: value})


class TestDescriptorGeometry:
    def test_total_threads(self):
        assert make_descriptor(num_wgs=4, threads_per_wg=64).total_threads == 256

    def test_wavefronts_per_wg_round_up(self):
        assert make_descriptor(threads_per_wg=65).wavefronts_per_wg(64) == 2

    def test_wavefronts_per_wg_exact(self):
        assert make_descriptor(threads_per_wg=256).wavefronts_per_wg(64) == 4

    def test_total_work(self):
        desc = make_descriptor(num_wgs=3, wg_work=100)
        assert desc.total_work == 300

    def test_context_bytes_per_wg(self):
        desc = make_descriptor(num_wgs=4, context=4096)
        assert desc.context_bytes_per_wg() == 1024


class TestIsolatedTime:
    def test_underfilled_launch_runs_at_full_rate(self):
        gpu = GPUConfig()
        desc = make_descriptor(num_wgs=8, wg_work=1000)  # 1 per CU
        assert desc.isolated_time(gpu) == 1000

    def test_exactly_full_rate_lanes(self):
        gpu = GPUConfig()
        desc = make_descriptor(num_wgs=32, wg_work=1000)  # 4 per CU, c=4
        assert desc.isolated_time(gpu) == 1000

    def test_oversubscribed_launch_slows(self):
        gpu = GPUConfig()
        desc = make_descriptor(num_wgs=64, wg_work=1000)  # 8 per CU, c=4
        assert desc.isolated_time(gpu) == 2000

    def test_latency_bound_kernel_scales_further(self):
        gpu = GPUConfig()
        desc = make_descriptor(num_wgs=64, wg_work=1000, cu_concurrency=8)
        assert desc.isolated_time(gpu) == 1000


class TestKernelInstance:
    def _kernel(self, num_wgs=4):
        job = make_job(descriptors=[make_descriptor(num_wgs=num_wgs)])
        return job.kernels[0]

    def test_initial_phase_queued(self):
        kernel = self._kernel()
        assert kernel.phase is KernelPhase.QUEUED
        assert kernel.wgs_pending == 4
        assert kernel.wgs_remaining == 4

    def test_activation(self):
        kernel = self._kernel()
        kernel.mark_active(now=100)
        assert kernel.phase is KernelPhase.ACTIVE
        assert kernel.activate_time == 100

    def test_double_activation_rejected(self):
        kernel = self._kernel()
        kernel.mark_active(now=0)
        with pytest.raises(SimulationError):
            kernel.mark_active(now=1)

    def test_issue_before_activation_rejected(self):
        with pytest.raises(SimulationError):
            self._kernel().note_wg_issued(now=0)

    def test_issue_accounting(self):
        kernel = self._kernel()
        kernel.mark_active(0)
        kernel.note_wg_issued(now=5)
        assert kernel.wgs_issued == 1
        assert kernel.wgs_pending == 3
        assert kernel.first_issue_time == 5

    def test_over_issue_rejected(self):
        kernel = self._kernel(num_wgs=1)
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        with pytest.raises(SimulationError):
            kernel.note_wg_issued(1)

    def test_completion_lifecycle(self):
        kernel = self._kernel(num_wgs=2)
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_issued(0)
        assert kernel.note_wg_completed(10) is False
        assert kernel.note_wg_completed(20) is True
        assert kernel.phase is KernelPhase.DONE
        assert kernel.finish_time == 20
        assert kernel.is_done

    def test_completion_without_issue_rejected(self):
        kernel = self._kernel()
        kernel.mark_active(0)
        with pytest.raises(SimulationError):
            kernel.note_wg_completed(0)

    def test_preemption_returns_wg_to_pending(self):
        kernel = self._kernel(num_wgs=2)
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_preempted()
        assert kernel.wgs_issued == 0
        assert kernel.wgs_pending == 2
        assert kernel.wgs_preempted == 1

    def test_preempt_without_running_wg_rejected(self):
        kernel = self._kernel()
        kernel.mark_active(0)
        with pytest.raises(SimulationError):
            kernel.note_wg_preempted()
