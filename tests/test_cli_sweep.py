"""CLI coverage for the sweep runner flags and the cache subcommand."""

import pytest

from repro.cli import main


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cli-cache")


class TestCacheSubcommand:
    def test_stats_on_empty_store(self, cache_dir, capsys):
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert cache_dir in out

    def test_run_then_stats_then_clear(self, cache_dir, capsys):
        assert main(["--benchmark", "IPV6", "--scheduler", "RR",
                     "--jobs", "8", "--cache-dir", cache_dir]) == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 1 cached result(s)" in out

    def test_requires_an_action(self, capsys):
        assert main(["cache"]) == 2
        assert "stats" in capsys.readouterr().out

    def test_rejects_unknown_action(self, capsys):
        assert main(["cache", "prune"]) == 2

    def test_rejects_run_flags(self, capsys):
        assert main(["cache", "stats", "--validate"]) == 2

    def test_action_only_for_cache(self, capsys):
        assert main(["run", "stats"]) == 2


class TestSweepFlags:
    def test_parallel_compare(self, cache_dir, capsys):
        code = main(["--benchmark", "IPV6", "--jobs", "12",
                     "--compare", "RR", "LAX",
                     "--workers", "2", "--cache-dir", cache_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 computed, 0 cached, 0 failed" in out

    def test_second_compare_is_cached(self, cache_dir, capsys):
        argv = ["--benchmark", "IPV6", "--jobs", "12",
                "--compare", "RR", "LAX", "--cache-dir", cache_dir]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 cached, 0 failed" in out

    def test_no_cache_leaves_store_empty(self, cache_dir, capsys):
        assert main(["--benchmark", "IPV6", "--jobs", "12",
                     "--compare", "RR", "LAX", "--no-cache",
                     "--cache-dir", cache_dir]) == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries          0" in capsys.readouterr().out

    def test_workers_must_be_positive(self, capsys):
        assert main(["--benchmark", "IPV6", "--compare", "RR", "LAX",
                     "--workers", "0"]) == 2

    def test_no_cache_conflicts_with_refresh(self, capsys):
        assert main(["--benchmark", "IPV6", "--scheduler", "RR",
                     "--no-cache", "--refresh"]) == 2

    def test_workers_reject_inprocess_observers(self, tmp_path, capsys):
        assert main(["--benchmark", "IPV6", "--compare", "RR", "LAX",
                     "--workers", "2",
                     "--trace", str(tmp_path / "t.jsonl")]) == 2

    def test_validated_parallel_compare(self, cache_dir):
        assert main(["--benchmark", "IPV6", "--jobs", "12",
                     "--compare", "RR", "LAX", "--workers", "2",
                     "--validate", "--cache-dir", cache_dir]) == 0
