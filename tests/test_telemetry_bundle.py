"""Perfetto export, self-profiling and the run-report bundle."""

import json

import pytest

from repro.config import SimConfig
from repro.errors import TelemetryError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.telemetry import (PID_CUS, PID_JOBS, SimProfiler, TelemetryHub,
                             build_chrome_trace, build_report,
                             job_post_mortem, render_markdown,
                             validate_bundle, write_bundle,
                             write_chrome_trace)
from repro.units import MS, US

from conftest import make_descriptor, make_job


def telemetry_run(scheduler="LAX", jobs=None, wg_events=True):
    if jobs is None:
        jobs = [make_job(job_id=i, arrival=(i + 1) * US, deadline=60 * US,
                         descriptors=[make_descriptor(num_wgs=32,
                                                      wg_work=25 * US)])
                for i in range(8)]
    hub = TelemetryHub(wg_events=wg_events)
    system = GPUSystem(make_scheduler(scheduler), SimConfig(), telemetry=hub)
    system.submit_workload(jobs)
    metrics = system.run()
    return hub, metrics


class TestPerfetto:
    def test_document_structure(self):
        hub, metrics = telemetry_run()
        doc = build_chrome_trace(hub.trace, decisions=hub.decisions,
                                 outcomes=metrics.outcomes, label="t")
        assert doc["otherData"]["format"] == "repro-perfetto-v1"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X"} <= phases

    def test_one_lifetime_slice_per_job(self):
        hub, metrics = telemetry_run()
        doc = build_chrome_trace(hub.trace, outcomes=metrics.outcomes)
        job_slices = [e for e in doc["traceEvents"]
                      if e["ph"] == "X" and e.get("cat") == "job"]
        assert len(job_slices) == metrics.num_jobs
        met = [e for e in job_slices if e["args"].get("met_deadline")]
        assert len(met) == metrics.jobs_meeting_deadline

    def test_kernel_slices_nested_in_job_tracks(self):
        hub, metrics = telemetry_run()
        doc = build_chrome_trace(hub.trace)
        kernel_slices = [e for e in doc["traceEvents"]
                         if e["ph"] == "X" and e.get("cat") == "kernel"]
        assert kernel_slices
        assert all(e["pid"] == PID_JOBS and e["dur"] >= 0
                   for e in kernel_slices)

    def test_cu_counter_tracks_need_wg_events(self):
        hub, _ = telemetry_run(wg_events=True)
        doc = build_chrome_trace(hub.trace)
        counters = [e for e in doc["traceEvents"]
                    if e["ph"] == "C" and e["pid"] == PID_CUS]
        assert counters
        device = [e for e in counters if e["name"] == "device residents"]
        assert device
        # Residency counts must never go negative.
        assert all(e["args"]["residents"] >= 0 for e in device)

    def test_timestamps_are_microseconds(self):
        hub, _ = telemetry_run()
        doc = build_chrome_trace(hub.trace)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        arrivals = [e.time for e in hub.trace.of_kind("job_arrival")]
        first_slice = min(e["ts"] for e in slices)
        assert first_slice == min(arrivals) / 1000.0

    def test_write_creates_parent_dirs(self, tmp_path):
        hub, _ = telemetry_run()
        path = tmp_path / "deep" / "trace.json"
        count = write_chrome_trace(str(path), hub.trace)
        assert count > 0
        assert json.loads(path.read_text())["traceEvents"]


class TestSelfProfiler:
    def test_records_per_callback(self):
        profiler = SimProfiler()

        def tick():
            pass

        profiler.record(tick, 0.25)
        profiler.record(tick, 0.75)
        stats = profiler.top_callbacks()[0]
        assert stats.calls == 2
        assert stats.seconds == pytest.approx(1.0)
        assert stats.mean_us == pytest.approx(5e5)

    def test_run_bracket(self):
        profiler = SimProfiler()
        profiler.begin_run()
        profiler.end_run(events_fired=1000, sim_end_ticks=5 * MS)
        assert profiler.wall_seconds >= 0.0
        assert profiler.events_fired == 1000
        snapshot = profiler.snapshot()
        assert snapshot["sim_end_ticks"] == 5 * MS
        assert "callbacks" in snapshot

    def test_attached_profiler_sees_engine_events(self):
        hub, _ = telemetry_run()
        assert hub.profiler.events_fired > 0
        assert hub.profiler.wall_seconds > 0.0
        assert hub.profiler.top_callbacks(limit=3)


class TestReport:
    def test_post_mortem_names_admission_decision(self):
        hub, metrics = telemetry_run()
        missed = [o for o in metrics.outcomes
                  if o.is_latency_sensitive and not o.met_deadline]
        assert missed, "overload workload must produce misses"
        record = job_post_mortem(missed[-1], hub.decisions)
        assert record["verdict"] in ("rejected_at_admission", "late_rejected",
                                     "completed_late", "unfinished")
        kinds = {d["kind"] for d in record["decisions"]}
        assert "admission_verdict" in kinds

    def test_report_structure_and_markdown(self):
        hub, metrics = telemetry_run()
        report = build_report(metrics, hub, label="cell")
        assert report["format"] == "repro-run-report-v1"
        assert report["summary"]["jobs_arrived"] == metrics.num_jobs
        assert report["post_mortems"]
        markdown = render_markdown(report)
        assert "# Run report — cell" in markdown
        assert "## Deadline-miss post-mortems" in markdown
        assert "admission" in markdown

    def test_bundle_round_trip(self, tmp_path):
        hub, metrics = telemetry_run()
        directory = str(tmp_path / "bundle")
        paths = write_bundle(directory, hub, metrics, label="cell",
                             diagnostics={"wgs_issued": 10})
        assert set(paths) >= {"trace.json", "metrics.prom", "metrics.json",
                              "report.md", "report.json", "events.jsonl",
                              "decisions.jsonl"}
        summary = validate_bundle(directory)
        assert summary["trace_events"] > 0
        assert summary["registry_metrics"] > 0
        assert summary["post_mortems"] > 0

    def test_validate_rejects_incomplete_bundle(self, tmp_path):
        with pytest.raises(TelemetryError):
            validate_bundle(str(tmp_path))

    def test_registry_gains_run_gauges(self, tmp_path):
        hub, metrics = telemetry_run()
        write_bundle(str(tmp_path / "b"), hub, metrics)
        assert hub.registry.value("run_makespan_ms") is not None
        assert hub.registry.value("run_deadline_ratio") == pytest.approx(
            metrics.deadline_ratio)
        assert hub.registry.value("sim_events_fired_total") == \
            hub.profiler.events_fired
