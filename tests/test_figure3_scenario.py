"""The paper's Figure 3 scenario: laxity ordering saves the long job.

Several short jobs and one late-arriving long job share a device that can
run two kernels at a time (emulated with 640-thread workgroups: a 16-WG
kernel occupies exactly half of the device's occupancy).  A work-aware
but laxity-blind greedy (SJF) keeps serving short kernels, and the long
job — which "will miss its deadline if not immediately scheduled (i.e.,
it has zero laxity)" — starves past its deadline.  The laxity-aware
scheduler runs it as soon as its laxity hits zero, and *every* job
finishes in time: the figure's bottom panel.

Admission is disabled for LAX to isolate Algorithm 2's ordering (the
figure predates the queuing-delay model), and the profiling table is warm
(the figure assumes known durations).
"""

import pytest

from repro.config import SimConfig
from repro.core.calibration import warm_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.units import US

from conftest import make_descriptor, make_job

#: Half-device kernels: 16 WGs x 640 threads (the "2 kernel slots" of
#: the figure).
def _kernel(name, work):
    return make_descriptor(name=name, num_wgs=16, threads_per_wg=640,
                           wg_work=work)


#: Isolated device-wide completion rates (WGs per tick) for warm starts.
RATES = {"short": 32 / (100 * US), "long": 32 / (300 * US)}

LONG_JOB_ID = 9


def figure3_jobs():
    shorts = [
        make_job(job_id=i, arrival=(i - 1) * 10 * US, deadline=1500 * US,
                 descriptors=[_kernel("short", 100 * US)] * 3)
        for i in (1, 2, 3, 4)
    ]
    long_job = make_job(job_id=LONG_JOB_ID, arrival=50 * US,
                        deadline=900 * US,
                        descriptors=[_kernel("long", 300 * US)] * 2)
    return shorts + [long_job]


def run_figure3(scheduler_name, **kwargs):
    policy = make_scheduler(scheduler_name, **kwargs)
    system = GPUSystem(policy, SimConfig())
    warm_table(system.profiler, RATES)
    system.submit_workload(figure3_jobs())
    metrics = system.run()
    return {o.job_id: o for o in metrics.outcomes}


class TestFigure3:
    def test_lax_completes_every_job(self):
        outcomes = run_figure3("LAX", enable_admission=False)
        for job_id, outcome in outcomes.items():
            assert outcome.met_deadline, job_id

    def test_laxity_blind_greedy_sacrifices_the_long_job(self):
        # SJF is the natural work-aware but laxity-blind greedy: it keeps
        # serving short kernels and the long job starves past its
        # deadline — the figure's top panel failure mode.
        outcomes = run_figure3("SJF")
        assert not outcomes[LONG_JOB_ID].met_deadline
        for job_id in (1, 2, 3, 4):
            assert outcomes[job_id].met_deadline, job_id

    def test_lax_runs_long_job_ahead_of_slack_rich_shorts(self):
        lax = run_figure3("LAX", enable_admission=False)
        sjf = run_figure3("SJF")
        assert (lax[LONG_JOB_ID].completion
                < sjf[LONG_JOB_ID].completion)
        # And the short jobs can afford the reordering: they all still
        # meet their deadlines under LAX.
        assert all(lax[i].met_deadline for i in (1, 2, 3, 4))


#: Pinned per-job completion times (ns) for the scenario, captured from
#: the current simulator.  These are *regression* values, not paper
#: numbers: the paper only publishes the qualitative schedule.  A change
#: that moves any completion by more than GOLDEN_TOLERANCE ticks altered
#: the simulated timeline and must update these pins deliberately.
GOLDEN_COMPLETIONS = {
    "LAX": {1: 804000, 2: 904000, 3: 914000, 4: 814000,
            LONG_JOB_ID: 714000},
    "SJF": {1: 404000, 2: 414000, 3: 504000, 4: 718000,
            LONG_JOB_ID: 1106000},
}

#: Absolute tolerance in ticks (1 us on a ~1 ms schedule).  Wide enough
#: to absorb a benign overhead-constant tweak, tight enough that any
#: dispatch-order change (whole 100 us kernels moving) trips it.
GOLDEN_TOLERANCE = 1000


class TestFigure3Golden:
    """Golden regression: the exact simulated timeline is pinned."""

    @pytest.mark.parametrize("scheduler,kwargs", [
        ("LAX", {"enable_admission": False}),
        ("SJF", {}),
    ])
    def test_completion_times_match_golden(self, scheduler, kwargs):
        outcomes = run_figure3(scheduler, **kwargs)
        golden = GOLDEN_COMPLETIONS[scheduler]
        assert set(outcomes) == set(golden)
        for job_id, expected in golden.items():
            actual = outcomes[job_id].completion
            assert abs(actual - expected) <= GOLDEN_TOLERANCE, (
                f"{scheduler} job {job_id}: completion {actual} drifted "
                f"from golden {expected} by {abs(actual - expected)} ticks "
                f"(tolerance {GOLDEN_TOLERANCE})")

    def test_golden_run_is_invariant_clean(self):
        """The pinned scenario also sweeps clean under the checker."""
        from repro.validation import InvariantChecker
        checker = InvariantChecker()
        policy = make_scheduler("LAX", enable_admission=False)
        system = GPUSystem(policy, SimConfig(), validator=checker)
        warm_table(system.profiler, RATES)
        system.submit_workload(figure3_jobs())
        system.run()
        assert checker.violations == []
        assert checker.total_checks > 0
