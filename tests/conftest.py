"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest

from repro.config import SimConfig
from repro.sim.job import Job
from repro.sim.kernel import KernelDescriptor
from repro.units import MS, US


def make_descriptor(name: str = "k", num_wgs: int = 4,
                    threads_per_wg: int = 64, wg_work: int = 10 * US,
                    vgpr: int = 1024, lds: int = 512,
                    context: int = 64 * 1024,
                    cu_concurrency: int = 4,
                    bytes_per_wg: int = 0) -> KernelDescriptor:
    """A small kernel descriptor with overridable fields."""
    return KernelDescriptor(
        name=name, num_wgs=num_wgs, threads_per_wg=threads_per_wg,
        wg_work=wg_work, vgpr_bytes_per_wg=vgpr, lds_bytes_per_wg=lds,
        context_bytes=context, cu_concurrency=cu_concurrency,
        bytes_per_wg=bytes_per_wg)


def make_job(job_id: int = 0,
             descriptors: Optional[Sequence[KernelDescriptor]] = None,
             arrival: int = 0, deadline: int = 1 * MS,
             benchmark: str = "TEST", tag: Optional[str] = None) -> Job:
    """A job over ``descriptors`` (default: one small kernel)."""
    if descriptors is None:
        descriptors = [make_descriptor()]
    return Job(job_id=job_id, benchmark=benchmark,
               descriptors=list(descriptors), arrival=arrival,
               deadline=deadline, tag=tag)


def make_jobs(count: int, gap: int = 50 * US,
              descriptors: Optional[Sequence[KernelDescriptor]] = None,
              deadline: int = 1 * MS) -> List[Job]:
    """``count`` identical jobs with fixed arrival gaps."""
    return [make_job(job_id=i, descriptors=descriptors,
                     arrival=gap * (i + 1), deadline=deadline)
            for i in range(count)]


@pytest.fixture
def config() -> SimConfig:
    """Default simulation configuration."""
    return SimConfig()
