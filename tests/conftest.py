"""Shared fixtures, builders and hypothesis profiles for the test suite."""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import pytest
from hypothesis import HealthCheck, settings

from repro.config import SimConfig
from repro.sim.job import Job
from repro.sim.kernel import KernelDescriptor
from repro.units import MS, US

# "dev" (default) explores freely; "ci" is derandomized with a bounded
# example budget so the CI validation job is deterministic and fast.
# Select with HYPOTHESIS_PROFILE=ci (see .github/workflows/ci.yml).
settings.register_profile(
    "dev", max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "ci", max_examples=15, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def make_descriptor(name: str = "k", num_wgs: int = 4,
                    threads_per_wg: int = 64, wg_work: int = 10 * US,
                    vgpr: int = 1024, lds: int = 512,
                    context: int = 64 * 1024,
                    cu_concurrency: int = 4,
                    bytes_per_wg: int = 0) -> KernelDescriptor:
    """A small kernel descriptor with overridable fields."""
    return KernelDescriptor(
        name=name, num_wgs=num_wgs, threads_per_wg=threads_per_wg,
        wg_work=wg_work, vgpr_bytes_per_wg=vgpr, lds_bytes_per_wg=lds,
        context_bytes=context, cu_concurrency=cu_concurrency,
        bytes_per_wg=bytes_per_wg)


def make_job(job_id: int = 0,
             descriptors: Optional[Sequence[KernelDescriptor]] = None,
             arrival: int = 0, deadline: int = 1 * MS,
             benchmark: str = "TEST", tag: Optional[str] = None) -> Job:
    """A job over ``descriptors`` (default: one small kernel)."""
    if descriptors is None:
        descriptors = [make_descriptor()]
    return Job(job_id=job_id, benchmark=benchmark,
               descriptors=list(descriptors), arrival=arrival,
               deadline=deadline, tag=tag)


def make_jobs(count: int, gap: int = 50 * US,
              descriptors: Optional[Sequence[KernelDescriptor]] = None,
              deadline: int = 1 * MS) -> List[Job]:
    """``count`` identical jobs with fixed arrival gaps."""
    return [make_job(job_id=i, descriptors=descriptors,
                     arrival=gap * (i + 1), deadline=deadline)
            for i in range(count)]


@pytest.fixture
def config() -> SimConfig:
    """Default simulation configuration."""
    return SimConfig()


@pytest.fixture(autouse=True)
def _empty_job_pool():
    """Start (and leave) every test with an empty recycling pool.

    Jobs parked by one test would otherwise be handed back — rebound in
    place — to the next test's template builds.  That aliasing is benign
    for the simulation (a rebound job is field-identical to a fresh one)
    but surprising for tests holding references to the earlier objects,
    and it makes pool accounting non-deterministic across test orders.
    """
    from repro.sim import job_pool
    job_pool.clear()
    yield
    job_pool.clear()


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent result cache at a per-test directory.

    Keeps unit tests from reading results a *different* test computed
    under monkeypatched simulation state, and from touching the real
    ``~/.cache/repro`` of whoever runs the suite.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
