"""Unit tests for the experiment harness (cells, grids, formatting)."""

import pytest

from repro.errors import HarnessError
from repro.harness.experiment import (ExperimentSpec, clear_cache,
                                      deadline_counts, default_num_jobs,
                                      run_cell)
from repro.harness.formatting import format_bar_series, format_table
from repro.harness.paper_expected import (TABLE5A_THROUGHPUT,
                                          TABLE5B_P99_MS,
                                          TABLE5C_ENERGY_MJ,
                                          TABLE5_SCHEDULERS)
from repro.harness.summary import (geomean_over_benchmarks, geomean_ratio,
                                   grid_results, normalized_deadline_grid)
from repro.metrics.tracking import PredictionTracker


SMALL = dict(num_jobs=12, seed=1)


class TestExperimentSpec:
    def test_validates_benchmark(self):
        with pytest.raises(Exception):
            ExperimentSpec(benchmark="NOPE", scheduler="RR")

    def test_validates_num_jobs(self):
        with pytest.raises(HarnessError):
            ExperimentSpec(benchmark="LSTM", scheduler="RR", num_jobs=0)

    def test_describe(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="LAX",
                              rate_level="low", num_jobs=8)
        assert "IPV6/LAX@low" in spec.describe()

    def test_hashable_with_scheduler_args(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="LAX",
                              scheduler_args=(("enable_admission", False),))
        assert hash(spec)


class TestRunCell:
    def test_runs_and_reports(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", **SMALL)
        result = run_cell(spec)
        assert result.metrics.num_jobs == 12
        assert result.diagnostics["events_fired"] > 0

    def test_caching_returns_same_object(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", **SMALL)
        assert run_cell(spec) is run_cell(spec)

    def test_clear_cache(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", **SMALL)
        first = run_cell(spec)
        clear_cache()
        assert run_cell(spec) is not first

    def test_deterministic_across_cache_clears(self):
        spec = ExperimentSpec(benchmark="STEM", scheduler="LAX", **SMALL)
        first = run_cell(spec).metrics.jobs_meeting_deadline
        clear_cache()
        second = run_cell(spec).metrics.jobs_meeting_deadline
        assert first == second

    def test_scheduler_args_respected(self):
        base = ExperimentSpec(benchmark="IPV6", scheduler="LAX", **SMALL)
        ablated = ExperimentSpec(
            benchmark="IPV6", scheduler="LAX",
            scheduler_args=(("enable_admission", False),), **SMALL)
        assert run_cell(ablated).metrics.jobs_rejected == 0
        assert run_cell(base).metrics.jobs_rejected > 0

    def test_tracker_runs_not_cached(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="LAX", **SMALL)
        tracker = PredictionTracker()
        first = run_cell(spec, tracker=tracker)
        second = run_cell(spec, tracker=PredictionTracker())
        assert first is not second

    def test_tracker_requires_lax(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", **SMALL)
        with pytest.raises(HarnessError):
            run_cell(spec, tracker=PredictionTracker())

    def test_lax_diagnostics_include_admission(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="LAX", **SMALL)
        diag = run_cell(spec).diagnostics
        assert "admission_accepted" in diag
        assert "admission_rejected" in diag

    def test_deadline_counts_helper(self):
        counts = deadline_counts("IPV6", ["RR", "LAX"], num_jobs=12)
        assert set(counts) == {"RR", "LAX"}
        assert counts["LAX"] >= counts["RR"]


class TestSummaries:
    def test_grid_and_normalisation(self):
        grid = grid_results(["IPV6", "STEM"], ["RR", "LAX"], num_jobs=12)
        normalized = normalized_deadline_grid(grid, baseline="RR")
        assert set(normalized) == {"IPV6", "STEM"}
        for row in normalized.values():
            assert row["RR"] in (0.0, 1.0)  # 0 only if RR met none
        ratio = geomean_over_benchmarks(normalized, "LAX")
        assert ratio > 0

    def test_geomean_ratio_vs_baseline(self):
        grid = grid_results(["IPV6"], ["RR", "LAX"], num_jobs=12)
        assert geomean_ratio(grid, "LAX", "RR") >= 1.0


class TestDefaultNumJobs:
    def test_default_is_paper_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_JOBS", raising=False)
        assert default_num_jobs() == 128

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_JOBS", "32")
        assert default_num_jobs() == 32

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_JOBS", "-3")
        with pytest.raises(HarnessError):
            default_num_jobs()


class TestPaperExpected:
    def test_table5_complete(self):
        benchmarks = {"LSTM", "GRU", "VAN", "HYBRID", "IPV6", "CUCKOO",
                      "GMM", "STEM"}
        for table in (TABLE5A_THROUGHPUT, TABLE5B_P99_MS, TABLE5C_ENERGY_MJ):
            assert set(table) == benchmarks
            for row in table.values():
                assert set(row) == set(TABLE5_SCHEDULERS)

    def test_lax_wins_most_throughput_rows(self):
        wins = sum(1 for row in TABLE5A_THROUGHPUT.values()
                   if row["LAX"] == max(row.values()))
        assert wins >= 6  # all but STEM (PREMA) per the paper


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"),
                            [("a", 1.0), ("bbbb", 22.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbbb" in lines[4]  # title, header, rule, row a, row bbbb

    def test_format_table_none_rendered_as_dash(self):
        text = format_table(("x",), [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_bar_series(self):
        text = format_bar_series(["a", "b"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_bar_series_validates_lengths(self):
        with pytest.raises(ValueError):
            format_bar_series(["a"], [1.0, 2.0])


class TestArtifacts:
    def test_cell_record_fields(self):
        from repro.harness.artifacts import cell_record
        record = cell_record(ExperimentSpec(
            benchmark="IPV6", scheduler="LAX", num_jobs=12))
        assert record["benchmark"] == "IPV6"
        assert record["jobs_meeting_deadline"] >= 0
        assert 0.0 <= record["wasted_wg_fraction"] <= 1.0
        assert record["makespan_ms"] > 0

    def test_collect_save_load_round_trip(self, tmp_path):
        from repro.harness.artifacts import (collect_results, load_results,
                                             save_results)
        records = collect_results(benchmarks=["IPV6"],
                                  schedulers=["RR", "LAX"], num_jobs=12)
        assert len(records) == 2
        path = tmp_path / "results.json"
        assert save_results(records, str(path)) == 2
        assert load_results(str(path)) == records

    def test_load_rejects_foreign_files(self, tmp_path):
        import json
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        from repro.harness.artifacts import load_results
        with pytest.raises(ValueError):
            load_results(str(path))
