"""Unit and property tests for arrival processes and sequence sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.arrivals import exponential_arrivals, uniform_arrivals
from repro.workloads.sequences import (MAX_SEQUENCE, MEAN_SEQUENCE,
                                       MIN_SEQUENCE, sample_sequence_lengths)
from repro.units import SEC


class TestExponentialArrivals:
    def test_count(self):
        rng = np.random.default_rng(1)
        assert len(exponential_arrivals(50, 1000, rng)) == 50

    def test_strictly_increasing(self):
        rng = np.random.default_rng(1)
        arrivals = exponential_arrivals(500, 1_000_000, rng)
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_gap_matches_rate(self):
        rng = np.random.default_rng(7)
        rate = 10_000.0
        arrivals = exponential_arrivals(5000, rate, rng)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(SEC / rate, rel=0.05)

    def test_deterministic_for_seed(self):
        a = exponential_arrivals(20, 1000, np.random.default_rng(5))
        b = exponential_arrivals(20, 1000, np.random.default_rng(5))
        assert a == b

    def test_start_offset(self):
        rng = np.random.default_rng(1)
        arrivals = exponential_arrivals(10, 1000, rng, start=10**9)
        assert all(t > 10**9 for t in arrivals)

    def test_invalid_args_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(WorkloadError):
            exponential_arrivals(0, 1000, rng)
        with pytest.raises(WorkloadError):
            exponential_arrivals(10, 0, rng)

    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=10, max_value=1e6),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_always_sorted_positive(self, count, rate, seed):
        rng = np.random.default_rng(seed)
        arrivals = exponential_arrivals(count, rate, rng)
        assert len(arrivals) == count
        assert all(t > 0 for t in arrivals)
        assert arrivals == sorted(arrivals)


class TestUniformArrivals:
    def test_fixed_gaps(self):
        assert uniform_arrivals(3, 100) == [100, 200, 300]

    def test_start_offset(self):
        assert uniform_arrivals(2, 10, start=5) == [15, 25]

    def test_invalid_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_arrivals(0, 10)
        with pytest.raises(WorkloadError):
            uniform_arrivals(5, 0)


class TestSequenceLengths:
    def test_count_and_bounds(self):
        rng = np.random.default_rng(1)
        lengths = sample_sequence_lengths(1000, rng)
        assert len(lengths) == 1000
        assert all(MIN_SEQUENCE <= n <= MAX_SEQUENCE for n in lengths)

    def test_mean_matches_wmt_trace(self):
        rng = np.random.default_rng(3)
        lengths = sample_sequence_lengths(20_000, rng)
        assert np.mean(lengths) == pytest.approx(MEAN_SEQUENCE, rel=0.05)

    def test_has_variability(self):
        rng = np.random.default_rng(1)
        lengths = sample_sequence_lengths(1000, rng)
        assert len(set(lengths)) > 10

    def test_deterministic_for_seed(self):
        a = sample_sequence_lengths(50, np.random.default_rng(2))
        b = sample_sequence_lengths(50, np.random.default_rng(2))
        assert a == b

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            sample_sequence_lengths(0, np.random.default_rng(1))
