"""Decision-event schema validation and scheduler emission integration."""

import json

import pytest

from repro.config import SimConfig
from repro.errors import TelemetryError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.telemetry import (DECISION_SCHEMAS, DecisionLog, MetricsRegistry,
                             TelemetryHub, validate_decision)
from repro.units import MS, US

from conftest import make_descriptor, make_job


class TestSchemas:
    def test_valid_events_pass(self):
        validate_decision("admission_verdict",
                          {"job_id": 1, "accepted": True,
                           "reason": "littles_law", "tot_rem_time": 0.0})
        validate_decision("queue_rotation",
                          {"pointer": 3, "previous": 0, "served": 2})

    def test_missing_required_field_rejected(self):
        with pytest.raises(TelemetryError):
            validate_decision("admission_verdict", {"job_id": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(TelemetryError):
            validate_decision("queue_rotation",
                              {"pointer": 1, "previous": 0, "served": 1,
                               "surprise": True})

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError):
            validate_decision("job_teleport", {})

    def test_every_kind_has_required_fields(self):
        for kind, schema in DECISION_SCHEMAS.items():
            assert any(schema.values()), f"{kind} has no required fields"


class TestDecisionLog:
    def test_emit_and_query(self):
        log = DecisionLog()
        log.emit(10, "priority_update", "LAX", job_id=1, priority=2.0,
                 previous=0.0)
        log.emit(20, "priority_update", "LAX", job_id=2, priority=1.0,
                 previous=3.0)
        log.emit(30, "preemption_cause", "LAX-PREMA", job_id=2, kernel="k",
                 evicted=4, cause="epoch_laxity_gap", urgent_job_id=1)
        assert len(log) == 3
        assert log.counts() == {"priority_update": 2, "preemption_cause": 1}
        assert len(log.of_kind("priority_update")) == 2
        # for_job matches both subject and urgent-job references.
        assert len(log.for_job(1)) == 2
        assert len(log.for_job(2)) == 2

    def test_registry_counter_bumped(self):
        registry = MetricsRegistry()
        log = DecisionLog(registry=registry)
        log.emit(0, "queue_rotation", "RR", pointer=1, previous=0, served=1)
        log.emit(0, "queue_rotation", "RR", pointer=2, previous=1, served=1)
        assert registry.value("decision_events_total",
                              kind="queue_rotation") == 2

    def test_jsonl_export_creates_parent_dirs(self, tmp_path):
        log = DecisionLog()
        log.emit(5, "late_reject", "LAX", job_id=9, reason="queuing_delay",
                 elapsed=100, deadline=50)
        path = tmp_path / "deep" / "nested" / "decisions.jsonl"
        assert log.to_jsonl(str(path)) == 1
        record = json.loads(path.read_text().splitlines()[0])
        assert record["kind"] == "late_reject"
        assert record["job_id"] == 9
        assert record["scheduler"] == "LAX"


def run_with_hub(scheduler, jobs, **hub_kwargs):
    hub = TelemetryHub(**hub_kwargs)
    system = GPUSystem(make_scheduler(scheduler), SimConfig(), telemetry=hub)
    system.submit_workload(jobs)
    metrics = system.run()
    return hub, metrics


def overload_jobs(count=8):
    """Arrivals dense enough that LAX's admission must reject some."""
    return [make_job(job_id=i, arrival=(i + 1) * US, deadline=60 * US,
                     descriptors=[make_descriptor(num_wgs=32,
                                                  wg_work=25 * US)])
            for i in range(count)]


class TestSchedulerEmission:
    def test_lax_emits_admission_verdicts(self):
        hub, metrics = run_with_hub("LAX", overload_jobs())
        verdicts = hub.decisions.of_kind("admission_verdict")
        assert len(verdicts) == metrics.num_jobs
        rejected = [e for e in verdicts if not e.fields["accepted"]]
        assert len(rejected) == metrics.jobs_rejected > 0
        # A Little's-Law rejection must carry its inputs.
        littles = [e for e in rejected
                   if e.fields["reason"] == "littles_law"]
        assert littles
        fields = littles[0].fields
        assert fields["tot_rem_time"] + fields["hold_time"] \
            + fields["dur_time"] >= fields["deadline"]

    def test_lax_emits_priority_updates_with_laxity(self):
        jobs = [make_job(job_id=i, arrival=i * 20 * US, deadline=5 * MS,
                         descriptors=[make_descriptor(num_wgs=8,
                                                      wg_work=200 * US)])
                for i in range(4)]
        hub, _ = run_with_hub("LAX", jobs)
        updates = hub.decisions.of_kind("priority_update")
        assert updates
        for event in updates:
            assert event.scheduler == "LAX"
            assert "laxity" in event.fields
            assert event.fields["priority"] != event.fields["previous"]

    def test_hybrid_emits_through_base_hook(self):
        hub, _ = run_with_hub("LAX-PREMA", overload_jobs())
        assert hub.decisions.of_kind("admission_verdict")
        assert all(e.scheduler == "LAX-PREMA"
                   for e in hub.decisions.events)

    def test_mlfq_emits_rotations_and_level_changes(self):
        # wg_work of 1 ms against a 2 ms deadline guarantees runtime
        # crosses the 1/3-deadline demotion threshold.
        jobs = [make_job(job_id=i, arrival=i * 10 * US, deadline=2 * MS,
                         descriptors=[make_descriptor(num_wgs=8,
                                                      wg_work=1 * MS)])
                for i in range(6)]
        hub, _ = run_with_hub("MLFQ", jobs)
        counts = hub.decisions.counts()
        assert counts.get("queue_rotation", 0) > 0
        assert counts.get("priority_update", 0) > 0

    def test_rr_emits_queue_rotations(self):
        jobs = [make_job(job_id=i, arrival=(i + 1) * 10 * US,
                         deadline=10 * MS,
                         descriptors=[make_descriptor(num_wgs=4,
                                                      wg_work=50 * US)])
                for i in range(5)]
        hub, _ = run_with_hub("RR", jobs)
        rotations = hub.decisions.of_kind("queue_rotation")
        assert rotations
        for event in rotations:
            assert event.fields["served"] >= 1

    def test_decision_events_can_be_disabled(self):
        hub, _ = run_with_hub("LAX", overload_jobs(),
                              decision_events=False)
        assert hub.decisions is None

    def test_no_hub_means_no_emission_machinery(self):
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        system.submit_workload(overload_jobs())
        system.run()
        assert system.telemetry is None
        assert system.sim.profiler is None


class TestDeterminism:
    def test_telemetry_leaves_results_bit_identical(self):
        def outcome_tuple(metrics):
            return [(o.job_id, o.accepted, o.completion, o.wgs_executed)
                    for o in metrics.outcomes]

        def run(telemetry):
            system = GPUSystem(make_scheduler("LAX"), SimConfig(),
                               telemetry=telemetry)
            system.submit_workload(overload_jobs())
            return system.run()

        bare = run(None)
        full = run(TelemetryHub(wg_events=True))
        assert outcome_tuple(bare) == outcome_tuple(full)
        assert bare.total_energy_joules == full.total_energy_joules
