"""Unit and property tests for Algorithm 1 (queuing-delay admission)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import EnergyConfig, GPUConfig
from repro.core.admission import (QueuingDelayAdmission, fits_free_capacity,
                                  remaining_time_or_deadline, should_admit,
                                  steady_state_pass, total_outstanding_time)
from repro.core.profiling import KernelProfilingTable
from repro.sim.compute_unit import ComputeUnit
from repro.sim.energy import EnergyMeter
from repro.sim.engine import Simulator
from repro.units import MS, US

from conftest import make_descriptor, make_job
from test_laxity import WINDOW, table_with_rate


def accepted_job(job):
    """Put a job into the ready state (as the CP would)."""
    job.mark_enqueued(job.arrival, job.job_id)
    job.mark_ready()
    return job


class TestShouldAdmit:
    def test_cold_job_on_idle_device_is_probe_accepted(self):
        job = make_job(deadline=100 * US)
        table = KernelProfilingTable(WINDOW)
        assert should_admit(job, [], table, now=0)

    def test_cold_job_behind_work_is_rejected(self):
        table = KernelProfilingTable(WINDOW)
        running = accepted_job(make_job(
            job_id=1, deadline=10 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)]))
        candidate = make_job(job_id=2, deadline=100 * US,
                             descriptors=[make_descriptor(name="other")])
        # The running job has no rates either, so it is charged its full
        # deadline budget; the candidate's own fallback is its deadline.
        assert not should_admit(candidate, [running], table, now=0)

    def test_accepts_when_drain_fits_deadline(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        running = accepted_job(make_job(
            job_id=1, arrival=now, deadline=10 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)]))
        candidate = make_job(
            job_id=2, arrival=now, deadline=MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)])
        # Drain = 10us (running) + 10us (own): far below the 1ms deadline.
        assert should_admit(candidate, [running], table, now)

    def test_rejects_when_drain_exceeds_deadline(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        running = accepted_job(make_job(
            job_id=1, arrival=now, deadline=10 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=2000)]))
        candidate = make_job(
            job_id=2, arrival=now, deadline=MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)])
        # Drain = 2000us >> 1ms deadline.
        assert not should_admit(candidate, [running], table, now)

    def test_elapsed_time_counts_against_budget(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        candidate = make_job(
            job_id=2, arrival=now - 990 * US, deadline=MS,
            descriptors=[make_descriptor(name="k", num_wgs=100)])
        # 990us already elapsed + 100us of work > 1ms deadline.
        assert not should_admit(candidate, [], table, now)


class TestTotalOutstanding:
    def test_skips_init_jobs(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        init_job = make_job(job_id=1, arrival=now,
                            descriptors=[make_descriptor(name="k", num_wgs=10)])
        assert total_outstanding_time([init_job], table, now) == 0.0

    def test_skips_excluded_job(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        job = accepted_job(make_job(
            job_id=1, arrival=now,
            descriptors=[make_descriptor(name="k", num_wgs=10)]))
        assert total_outstanding_time([job], table, now, exclude=job) == 0.0

    def test_sums_accepted_jobs(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        jobs = [accepted_job(make_job(
            job_id=i, arrival=now, deadline=10 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)]))
            for i in range(3)]
        total = total_outstanding_time(jobs, table, now)
        assert total == pytest.approx(30 * US, rel=0.05)


class TestDeadlineFallback:
    def test_known_rate_uses_estimate(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        job = accepted_job(make_job(
            arrival=now, deadline=10 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=10)]))
        assert remaining_time_or_deadline(job, table, now) == pytest.approx(
            10 * US, rel=0.05)

    def test_unknown_rate_charges_deadline_budget(self):
        table = KernelProfilingTable(WINDOW)
        job = accepted_job(make_job(arrival=0, deadline=MS))
        assert remaining_time_or_deadline(job, table, 200 * US) == pytest.approx(
            800 * US)

    def test_budget_never_negative(self):
        table = KernelProfilingTable(WINDOW)
        job = accepted_job(make_job(arrival=0, deadline=MS))
        assert remaining_time_or_deadline(job, table, 2 * MS) == 0.0


class TestSteadyStatePass:
    def test_kills_past_deadline_jobs(self):
        table = KernelProfilingTable(WINDOW)
        job = accepted_job(make_job(arrival=0, deadline=10 * US))
        rejects = steady_state_pass([job], table, now=20 * US)
        assert rejects == [job]

    def test_keeps_unknown_rate_jobs(self):
        table = KernelProfilingTable(WINDOW)
        job = accepted_job(make_job(arrival=0, deadline=MS))
        assert steady_state_pass([job], table, now=10 * US) == []

    def test_late_rejects_ready_job_behind_pile(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        ahead = accepted_job(make_job(
            job_id=1, arrival=now, deadline=10 * MS,
            descriptors=[make_descriptor(name="k", num_wgs=900)]))
        behind = accepted_job(make_job(
            job_id=2, arrival=now, deadline=500 * US,
            descriptors=[make_descriptor(name="k", num_wgs=200)]))
        rejects = steady_state_pass([ahead, behind], table, now)
        assert rejects == [behind]

    def test_running_jobs_not_killed_on_estimates(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        job = accepted_job(make_job(
            arrival=now - 400 * US, deadline=500 * US,
            descriptors=[make_descriptor(name="k", num_wgs=2000)]))
        job.mark_running(now - 300 * US)
        # Estimate says hopeless, but running jobs survive until the
        # elapsed > deadline rule fires.
        assert steady_state_pass([job], table, now) == []
        assert steady_state_pass([job], table,
                                 now + 200 * US) == [job]

    def test_prefix_semantics_earlier_jobs_unaffected_by_later(self):
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        early = accepted_job(make_job(
            job_id=1, arrival=now, deadline=300 * US,
            descriptors=[make_descriptor(name="k", num_wgs=200)]))
        late = accepted_job(make_job(
            job_id=2, arrival=now, deadline=300 * US,
            descriptors=[make_descriptor(name="k", num_wgs=200)]))
        rejects = steady_state_pass([early, late], table, now)
        assert early not in rejects
        assert late in rejects


class TestFreeCapacityFastPath:
    def _cus(self, count=2):
        sim = Simulator()
        meter = EnergyMeter(EnergyConfig())
        return [ComputeUnit(i, sim, GPUConfig(), meter, lambda k, t: None)
                for i in range(count)]

    def test_small_job_fits_idle_device(self):
        cus = self._cus()
        job = make_job(descriptors=[make_descriptor(num_wgs=8)])
        assert fits_free_capacity(job, cus)

    def test_wide_job_does_not_fit(self):
        cus = self._cus()
        job = make_job(descriptors=[make_descriptor(num_wgs=9)])
        assert not fits_free_capacity(job, cus)  # 2 CUs x 4 slots = 8

    def test_reservation_discount(self):
        cus = self._cus()
        job = make_job(descriptors=[make_descriptor(num_wgs=8)])
        assert not fits_free_capacity(job, cus, reserved_wgs=1)

    def test_resident_wgs_consume_slots(self):
        cus = self._cus()
        filler_job = make_job(descriptors=[make_descriptor(num_wgs=4)])
        filler = filler_job.kernels[0]
        filler.mark_active(0)
        for _ in range(4):
            cus[0].start_wg(filler)
        job = make_job(job_id=2, descriptors=[make_descriptor(num_wgs=5)])
        assert not fits_free_capacity(job, cus)
        small = make_job(job_id=3, descriptors=[make_descriptor(num_wgs=4)])
        assert fits_free_capacity(small, cus)

    def test_mixed_concurrency_uses_conservative_limit(self):
        cus = self._cus(count=1)
        low = make_job(descriptors=[make_descriptor(num_wgs=2)])
        kernel = low.kernels[0]
        kernel.mark_active(0)
        cus[0].start_wg(kernel)
        cus[0].start_wg(kernel)
        # A c=8 job could add 6 more alone, but the resident c=4 WGs cap
        # the full-rate budget at 4 total.
        high = make_job(job_id=2, descriptors=[make_descriptor(
            num_wgs=3, cu_concurrency=8)])
        assert not fits_free_capacity(high, cus)


class TestQueuingDelayAdmissionWrapper:
    def test_counts_decisions(self):
        table = table_with_rate("k", rate_per_us=1.0)
        admission = QueuingDelayAdmission(table)
        now = 10 * WINDOW
        good = make_job(job_id=1, arrival=now, deadline=10 * MS,
                        descriptors=[make_descriptor(name="k", num_wgs=10)])
        bad = make_job(job_id=2, arrival=now, deadline=5 * US,
                       descriptors=[make_descriptor(name="k", num_wgs=1000)])
        assert admission.evaluate(good, [], now)
        assert not admission.evaluate(bad, [], now)
        assert admission.accepted == 1
        assert admission.rejected == 1
        assert admission.decisions == 2

    def test_fast_path_counted(self):
        table = KernelProfilingTable(WINDOW)
        admission = QueuingDelayAdmission(table)
        sim = Simulator()
        meter = EnergyMeter(EnergyConfig())
        cus = [ComputeUnit(0, sim, GPUConfig(), meter, lambda k, t: None)]
        job = make_job(descriptors=[make_descriptor(num_wgs=2)])
        assert admission.evaluate(job, [], 0, cus=cus)
        assert admission.fast_accepted == 1


class TestAdmissionProperties:
    @given(deadline_us=st.integers(min_value=1, max_value=100_000),
           backlog_wgs=st.integers(min_value=0, max_value=5000))
    def test_monotone_in_backlog(self, deadline_us, backlog_wgs):
        """If a candidate is rejected with backlog B, it is also rejected
        with any backlog B' >= B (admission is monotone)."""
        table = table_with_rate("k", rate_per_us=1.0)
        now = 10 * WINDOW
        candidate = make_job(
            job_id=99, arrival=now, deadline=deadline_us * US,
            descriptors=[make_descriptor(name="k", num_wgs=10)])

        def verdict(wgs):
            if wgs == 0:
                return should_admit(candidate, [], table, now)
            ahead = accepted_job(make_job(
                job_id=1, arrival=now, deadline=10**9,
                descriptors=[make_descriptor(name="k", num_wgs=wgs)]))
            return should_admit(candidate, [ahead], table, now)

        if not verdict(backlog_wgs):
            assert not verdict(backlog_wgs * 2 + 1)
