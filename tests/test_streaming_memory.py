"""Memory-flatness regression: streamed + retired runs are O(live jobs).

The claim the streaming subsystem exists to make: pushing 5x more jobs
through one engine must not move the traced-allocation peak when
retirement is on (job state is released at each terminal transition),
and must grow it when retirement is off (the seed bookkeeping keeps
every Job and outcome alive).

Peaks are measured with :mod:`tracemalloc` after a small warmup run so
one-time allocations (imports, memo caches) don't land in the first
measurement, and computed lazily once per session — the assertions in
both tests read the same four numbers.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Dict, Tuple

from repro.config import SimConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.workloads.streaming import SUSTAINED_RATES, sustained_source

SHORT_JOBS = 2000
LONG_JOBS = 10000

_peaks: Dict[Tuple[int, bool], int] = {}


def _run(num_jobs: int, retire: bool) -> None:
    system = GPUSystem(make_scheduler("LAX"), SimConfig(), retire=retire)
    system.submit_stream(sustained_source(SUSTAINED_RATES["high"]).jobs(),
                         max_jobs=num_jobs)
    system.run()


def _peak(num_jobs: int, retire: bool) -> int:
    key = (num_jobs, retire)
    if key not in _peaks:
        if not _peaks:
            _run(200, True)  # warmup: absorb one-time allocations
        gc.collect()
        tracemalloc.start()
        _run(num_jobs, retire)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        _peaks[key] = peak
    return _peaks[key]


def test_retired_stream_memory_flat_over_run_length():
    short = _peak(SHORT_JOBS, True)
    long = _peak(LONG_JOBS, True)
    assert long <= 1.2 * max(short, 1), (short, long)


def test_unretired_stream_memory_grows_with_run_length():
    short = _peak(SHORT_JOBS, False)
    long = _peak(LONG_JOBS, False)
    assert long > 2 * short, (short, long)
    # ... and dwarfs the retired run of the same length.
    assert long > 2 * _peak(LONG_JOBS, True)
