"""The runtime invariant checker: clean runs pass, corrupted state fails.

Two halves.  Positive: the checker rides along full simulations under
several schedulers and finds nothing (while actually running — the check
counters prove the hooks fired).  Negative: each invariant family is
violated by tampering with live simulator state, and the resulting
:class:`InvariantViolation` carries the structured event context the CLI
and telemetry bundle rely on.
"""

import dataclasses

import pytest

from repro.config import SimConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.engine import EventHandle
from repro.units import MS, US
from repro.validation import InvariantChecker, InvariantViolation

from conftest import make_descriptor, make_job, make_jobs


def run_validated(jobs, scheduler="LAX"):
    checker = InvariantChecker()
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       validator=checker)
    system.submit_workload(jobs)
    metrics = system.run()
    return system, metrics, checker


def start_validated(jobs, scheduler="RR"):
    """A validated system run up to 50 us — mid-flight, kernels resident."""
    checker = InvariantChecker()
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       validator=checker)
    system.submit_workload(jobs)
    system.sim.run_until(50 * US)
    return system, checker


class TestCleanRuns:
    @pytest.mark.parametrize("scheduler", ["LAX", "RR", "EDF", "PREMA",
                                           "LAX-CPU"])
    def test_no_violations_and_hooks_fired(self, scheduler):
        jobs = make_jobs(12, descriptors=[make_descriptor(),
                                          make_descriptor(name="k2")])
        _, _, checker = run_validated(jobs, scheduler)
        assert checker.violations == []
        for invariant in ("clock_monotonic", "cu_occupancy",
                          "wg_conservation", "stream_fifo",
                          "job_lifecycle", "queue_pool", "run_end"):
            assert checker.checks.get(invariant, 0) > 0, invariant
        assert checker.total_checks == sum(checker.checks.values())

    def test_summary_is_json_ready(self):
        _, _, checker = run_validated(make_jobs(3))
        summary = checker.summary()
        assert summary["violations"] == []
        assert summary["total_checks"] == checker.total_checks
        import json
        json.dumps(summary)

    def test_attach_wires_every_component(self):
        checker = InvariantChecker()
        system = GPUSystem(make_scheduler("RR"), SimConfig(),
                           validator=checker)
        assert system.sim.validator is checker
        assert system.cp.validator is checker
        assert system.dispatcher.validator is checker
        assert all(cu.validator is checker for cu in system.dispatcher.cus)

    def test_metrics_identical_with_and_without_checker(self):
        """The checker observes; it must never perturb the simulation."""
        plain = GPUSystem(make_scheduler("LAX"), SimConfig())
        plain.submit_workload(make_jobs(8))
        baseline = plain.run()
        _, validated, _ = run_validated(make_jobs(8))
        assert dataclasses.asdict(baseline) == dataclasses.asdict(validated)


class TestViolations:
    def test_clock_monotonicity(self):
        system, checker = start_validated([make_job()])
        stale = EventHandle(when=system.sim.now - 1, seq=0,
                            callback=lambda: None, args=())
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_event(stale, system.sim.now)
        violation = excinfo.value
        assert violation.invariant == "clock_monotonic"
        assert violation.context["event_time"] == system.sim.now - 1
        assert checker.violations  # recorded before raising

    def test_cu_occupancy_negative(self):
        system, checker = start_validated([make_job()])
        cu = system.dispatcher.cus[0]
        cu.used_threads = -5
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_cu_update(cu)
        assert excinfo.value.invariant == "cu_occupancy"
        assert excinfo.value.context["resource"] == "threads"

    def test_cu_occupancy_over_limit(self, config):
        system, checker = start_validated([make_job()])
        cu = system.dispatcher.cus[0]
        cu.used_threads = config.gpu.threads_per_cu + 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_cu_update(cu)
        assert excinfo.value.context["limit"] == config.gpu.threads_per_cu

    def test_wg_conservation_counter_drift(self):
        # A long-running kernel is mid-flight at 50 us; faking an extra
        # completion breaks completed + resident + queued == dispatched.
        job = make_job(descriptors=[make_descriptor(wg_work=1 * MS,
                                                    num_wgs=8)],
                       deadline=20 * MS)
        system, checker = start_validated([job])
        kernel = job.kernels[0]
        assert kernel.phase.value == "active"
        kernel.wgs_completed += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_dispatch(system.dispatcher)
        assert excinfo.value.invariant == "wg_conservation"
        assert excinfo.value.context["job"] == job.job_id

    def test_stream_fifo_premature_completion(self):
        job = make_job(descriptors=[make_descriptor(wg_work=1 * MS),
                                    make_descriptor(name="k2")],
                       deadline=20 * MS)
        system, checker = start_validated([job])
        assert not job.kernels[0].is_done
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_kernel_complete(job.kernels[1])
        assert excinfo.value.invariant == "stream_fifo"
        assert excinfo.value.context["prerequisite"] == 0

    def test_job_lifecycle_release_marker(self):
        job = make_job()
        system, checker = start_validated([job])
        job.released_kernels = job.num_kernels + 3
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_job_event(job, "tampered")
        assert excinfo.value.invariant == "stream_fifo"

    def test_queue_pool_bijection_break(self):
        job = make_job(descriptors=[make_descriptor(wg_work=1 * MS)],
                       deadline=20 * MS)
        system, checker = start_validated([job])
        system.pool._by_job.pop(job.job_id)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_job_event(job, "tampered")
        assert excinfo.value.invariant == "queue_pool"

    def test_run_end_with_resident_wgs(self):
        # Teardown audit: a device abandoned mid-run still hosts WGs.
        job = make_job(descriptors=[make_descriptor(wg_work=1 * MS,
                                                    num_wgs=8)],
                       deadline=20 * MS)
        system, checker = start_validated([job])
        assert any(cu.num_residents for cu in system.dispatcher.cus)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_run_end(system, system.metrics.finalize(
                system.sim.now, system.energy))
        assert excinfo.value.invariant == "run_end"

    def test_violation_as_dict_round_trips(self):
        violation = InvariantViolation(
            "wg_conservation", "lost a workgroup", time=42,
            context={"job": 7, "kernel": "alpha"})
        record = violation.as_dict()
        assert record["invariant"] == "wg_conservation"
        assert record["time"] == 42
        assert record["context"] == {"job": 7, "kernel": "alpha"}
        assert "lost a workgroup" in record["message"]
