"""Unit tests for the RNN job builders (LSTM/GRU/VAN/HYBRID)."""

from collections import Counter

import pytest

from repro.config import GPUConfig
from repro.errors import WorkloadError
from repro.units import MS
from repro.workloads.rnn import (GATE_RATIO, RNN_DEADLINE, build_rnn_jobs,
                                 rnn_job_descriptors, rnn_kernel_specs)

GPU = GPUConfig()


def call_counts(model, hidden, seq_len):
    chain = rnn_job_descriptors(model, hidden, seq_len, GPU)
    counts = Counter()
    for desc in chain:
        counts[desc.name.split(".")[-1]] += 1
    return counts


class TestTable1Structure:
    def test_lstm_seq13_matches_table1_call_counts(self):
        counts = call_counts("lstm", 128, 13)
        assert counts["TensorKernel1"] == 3
        assert counts["TensorKernel2"] == 5
        assert counts["TensorKernel3"] == 2
        assert counts["TensorKernel4"] == 40
        assert counts["ActivationKernel5"] == 39
        assert counts["rocBLASGEMMKernel1"] == 13

    def test_gemm_count_scales_with_sequence_length(self):
        for seq_len in (4, 16, 32):
            counts = call_counts("lstm", 128, seq_len)
            assert counts["rocBLASGEMMKernel1"] == seq_len

    def test_gru_has_fewer_per_step_kernels_than_lstm(self):
        lstm = call_counts("lstm", 128, 10)
        gru = call_counts("gru", 128, 10)
        assert gru["TensorKernel4"] < lstm["TensorKernel4"]

    def test_vanilla_is_lightest(self):
        van = call_counts("van", 128, 10)
        gru = call_counts("gru", 128, 10)
        assert sum(van.values()) < sum(gru.values())


class TestGateScaling:
    def test_gemm_work_ordering(self):
        lstm_gemm = rnn_kernel_specs("lstm", 128)["GEMM"]
        gru_gemm = rnn_kernel_specs("gru", 128)["GEMM"]
        van_gemm = rnn_kernel_specs("van", 128)["GEMM"]
        assert lstm_gemm.isolated_us > gru_gemm.isolated_us > van_gemm.isolated_us

    def test_gate_ratios(self):
        assert GATE_RATIO["lstm"] == 1.0
        assert GATE_RATIO["gru"] < GATE_RATIO["lstm"]
        assert GATE_RATIO["van"] < GATE_RATIO["gru"]

    def test_hidden_size_scales_gemm_quadratically(self):
        small = rnn_kernel_specs("gru", 128)["GEMM"]
        large = rnn_kernel_specs("gru", 256)["GEMM"]
        assert large.isolated_us == pytest.approx(small.isolated_us * 4)
        assert large.threads == small.threads * 2

    def test_kernel_names_namespaced_by_model(self):
        lstm = rnn_kernel_specs("lstm", 128)["GEMM"]
        gru = rnn_kernel_specs("gru", 256)["GEMM"]
        assert lstm.name != gru.name

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            rnn_kernel_specs("transformer", 128)

    def test_bad_seq_len_rejected(self):
        with pytest.raises(WorkloadError):
            rnn_job_descriptors("lstm", 128, 0, GPU)


class TestJobBuilder:
    def test_builds_requested_count(self):
        jobs = build_rnn_jobs("LSTM", (("lstm", 128),), 32, 8000, 1, GPU)
        assert len(jobs) == 32

    def test_deadline_is_7ms(self):
        jobs = build_rnn_jobs("LSTM", (("lstm", 128),), 4, 8000, 1, GPU)
        assert all(job.deadline == RNN_DEADLINE == 7 * MS for job in jobs)

    def test_job_sizes_vary_with_sequence_length(self):
        jobs = build_rnn_jobs("LSTM", (("lstm", 128),), 64, 8000, 1, GPU)
        assert len({job.num_kernels for job in jobs}) > 3

    def test_tags_describe_model_and_length(self):
        jobs = build_rnn_jobs("LSTM", (("lstm", 128),), 4, 8000, 1, GPU)
        assert all(job.tag.startswith("lstm128:seq=") for job in jobs)

    def test_hybrid_mixes_models(self):
        jobs = build_rnn_jobs("HYBRID", (("lstm", 128), ("gru", 256)),
                              64, 8000, 1, GPU)
        prefixes = {job.tag.split(":")[0] for job in jobs}
        assert prefixes == {"lstm128", "gru256"}

    def test_deterministic_per_seed(self):
        a = build_rnn_jobs("LSTM", (("lstm", 128),), 16, 8000, 9, GPU)
        b = build_rnn_jobs("LSTM", (("lstm", 128),), 16, 8000, 9, GPU)
        assert [(j.arrival, j.num_kernels) for j in a] == \
               [(j.arrival, j.num_kernels) for j in b]

    def test_different_seeds_differ(self):
        a = build_rnn_jobs("LSTM", (("lstm", 128),), 16, 8000, 1, GPU)
        b = build_rnn_jobs("LSTM", (("lstm", 128),), 16, 8000, 2, GPU)
        assert [j.arrival for j in a] != [j.arrival for j in b]
