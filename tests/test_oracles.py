"""Analytic oracles against real runs and known queueing-theory values."""

import math

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.units import MS, US
from repro.validation import (LatencyBand, audit_run, erlang_c,
                              fits_fully_resident, mdc_mean_wait,
                              mmc_mean_wait, single_job_latency_band,
                              utilization_audit, work_ledger)

from conftest import make_descriptor, make_job, make_jobs


def run(jobs, scheduler="RR"):
    system = GPUSystem(make_scheduler(scheduler), SimConfig())
    system.submit_workload(jobs)
    return system, system.run()


class TestSingleJobLatency:
    @pytest.mark.parametrize("num_kernels", [1, 2, 4])
    def test_band_contains_measured_latency(self, config, num_kernels):
        descriptors = [make_descriptor(name=f"k{i}", wg_work=50 * US)
                       for i in range(num_kernels)]
        job = make_job(descriptors=descriptors, deadline=50 * MS)
        _, metrics = run([job])
        band = single_job_latency_band(job, config)
        latency = metrics.outcomes[0].latency
        assert band.contains(latency), (band, latency)

    def test_band_is_tight(self, config):
        """The closed form is exact up to integer-tick rounding."""
        job = make_job(descriptors=[make_descriptor(wg_work=100 * US)])
        band = single_job_latency_band(job, config)
        assert band.upper - band.lower <= 2 * job.num_kernels

    def test_rejects_oversubscribed_launches(self, config):
        huge = make_descriptor(num_wgs=4096, threads_per_wg=640)
        job = make_job(descriptors=[huge])
        assert not fits_fully_resident(job, config)
        with pytest.raises(SimulationError):
            single_job_latency_band(job, config)

    def test_latency_band_contains(self):
        band = LatencyBand(lower=10, upper=20)
        assert band.contains(10) and band.contains(20)
        assert not band.contains(9) and not band.contains(21)


class TestQueueingFormulas:
    def test_erlang_c_single_server_is_rho(self):
        # For M/M/1 the probability of waiting equals the utilization.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_erlang_c_known_value(self):
        # Classic tabulated case: c=2, a=1 erlang -> P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_erlang_c_saturated_queue_always_waits(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.9) == 1.0

    def test_erlang_c_input_validation(self):
        with pytest.raises(SimulationError):
            erlang_c(0, 0.5)
        with pytest.raises(SimulationError):
            erlang_c(2, -1.0)

    def test_mm1_mean_wait_closed_form(self):
        # M/M/1: Wq = rho * S / (1 - rho).
        arrival, service = 0.5, 1.0
        rho = arrival * service
        expected = rho * service / (1.0 - rho)
        assert mmc_mean_wait(arrival, service, 1) == pytest.approx(expected)

    def test_mdc_halves_mmc(self):
        assert mdc_mean_wait(0.5, 1.0, 2) == pytest.approx(
            mmc_mean_wait(0.5, 1.0, 2) / 2.0)

    def test_unstable_queue_waits_forever(self):
        assert mmc_mean_wait(2.0, 1.0, 1) == math.inf


class TestRunAudits:
    def test_clean_run_passes_all_oracles(self):
        jobs = make_jobs(10, descriptors=[make_descriptor(),
                                          make_descriptor(name="k2")])
        system, metrics = run(jobs)
        assert audit_run(system, jobs, metrics) == []

    def test_work_ledger_brackets_executed_work(self):
        jobs = make_jobs(6)
        system, _ = run(jobs)
        ledger = work_ledger(system, jobs)
        assert ledger.ok()
        assert ledger.lower <= ledger.executed <= ledger.upper
        assert ledger.completed_wgs == sum(j.total_wgs for j in jobs)

    def test_utilization_within_bounds(self):
        jobs = make_jobs(6)
        system, metrics = run(jobs)
        audit = utilization_audit(system, jobs, metrics)
        assert audit.ok()
        assert 0.0 <= audit.utilization <= 1.0

    def test_audit_survives_preemption(self):
        # PREMA evicts and re-executes WGs; the ledger's preemption bound
        # must absorb the discarded partial progress.
        low = make_job(job_id=0,
                       descriptors=[make_descriptor(wg_work=300 * US,
                                                    num_wgs=16,
                                                    threads_per_wg=640)],
                       deadline=30 * MS)
        low.user_priority = 4
        urgent = [make_job(job_id=i, arrival=100 * US + i * 20 * US,
                           descriptors=[make_descriptor(wg_work=50 * US,
                                                        num_wgs=16,
                                                        threads_per_wg=640)],
                           deadline=3 * MS)
                  for i in range(1, 5)]
        jobs = [low] + urgent
        system, metrics = run(jobs, "PREMA")
        assert audit_run(system, jobs, metrics) == []

    def test_tampered_work_fails_ledger(self):
        jobs = make_jobs(3)
        system, metrics = run(jobs)
        system.dispatcher.cus[0].work_done += 1e9
        failures = audit_run(system, jobs, metrics)
        assert any("work conservation" in f for f in failures)
