"""Behavioural tests for the CPU-side schedulers (BAT, BAY, PRO, LAX-*)."""

import pytest

from repro.config import SimConfig
from repro.schedulers.cpu_side.bat import BatchMakerScheduler, batch_key
from repro.schedulers.cpu_side.bay import BaymaxScheduler
from repro.schedulers.cpu_side.lax_host import (LaxCpuScheduler,
                                                LaxSoftwareScheduler)
from repro.schedulers.cpu_side.pro import ProphetScheduler
from repro.sim.device import GPUSystem
from repro.sim.job import JobState
from repro.units import MS, US

from conftest import make_descriptor, make_job


def run_jobs(policy, jobs, config=None):
    system = GPUSystem(policy, config or SimConfig())
    system.submit_workload(jobs)
    return system, system.run()


def simple_jobs(count, gap=100 * US, num_wgs=2, wg_work=50 * US,
                deadline=100 * MS, name="k"):
    return [make_job(job_id=i, arrival=gap * (i + 1), deadline=deadline,
                     descriptors=[make_descriptor(name=name, num_wgs=num_wgs,
                                                  wg_work=wg_work)])
            for i in range(count)]


class TestBatchKey:
    def test_uses_tag_model_prefix(self):
        job = make_job(tag="lstm128:seq=9")
        assert batch_key(job) == "lstm128"

    def test_falls_back_to_benchmark(self):
        job = make_job(benchmark="IPV6")
        assert batch_key(job) == "IPV6"


class TestBatchMaker:
    def test_all_jobs_complete(self):
        policy = BatchMakerScheduler()
        _, metrics = run_jobs(policy, simple_jobs(6))
        assert all(o.completion is not None for o in metrics.outcomes)
        assert policy.batches_dispatched >= 1

    def test_simultaneous_arrivals_batch_together(self):
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=50 * US)])
                for i in range(4)]
        policy = BatchMakerScheduler()
        _, metrics = run_jobs(policy, jobs)
        # First arrival opens+dispatches a batch of 1; the other three
        # (same timestamp, processed after) form the next batch.
        assert policy.batches_dispatched == 2

    def test_lock_step_delays_members(self):
        # Two 2-kernel jobs batched: member 0's kernel 1 waits for member
        # 1's kernel 0 under lock-step.
        descs = [make_descriptor(name="a", num_wgs=1, wg_work=50 * US),
                 make_descriptor(name="b", num_wgs=1, wg_work=50 * US)]
        solo = make_job(job_id=0, arrival=10 * US, deadline=100 * MS,
                        descriptors=descs)
        _, solo_metrics = run_jobs(BatchMakerScheduler(), [solo])
        solo_latency = solo_metrics.outcomes[0].latency

        pair = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=descs) for i in range(2)]
        _, pair_metrics = run_jobs(BatchMakerScheduler(), pair)
        batched_first = min(o.latency for o in pair_metrics.outcomes
                            if o.job_id == 1)
        # The lock-stepped member is no faster than running alone.
        assert batched_first >= solo_latency

    def test_max_batch_respected(self):
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=20 * US)])
                for i in range(10)]
        policy = BatchMakerScheduler(max_batch=4)
        run_jobs(policy, jobs)
        assert policy.batches_dispatched >= 3


class TestBaymax:
    def test_prediction_cost_delays_dispatch(self):
        job = make_job(arrival=10 * US, deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=10 * US)])
        _, metrics = run_jobs(BaymaxScheduler(), [job])
        # 50us prediction + 4us crossing + 2us activation + 10us work.
        assert metrics.outcomes[0].latency >= 66 * US

    def test_rejects_jobs_that_cannot_fit_prediction_window(self):
        # 40us deadline < 50us prediction cost: hopeless, like IPV6.
        jobs = [make_job(job_id=i, arrival=(i + 1) * 20 * US,
                         deadline=40 * US,
                         descriptors=[make_descriptor(num_wgs=32,
                                                      wg_work=25 * US)])
                for i in range(4)]
        _, metrics = run_jobs(BaymaxScheduler(), jobs)
        assert metrics.jobs_rejected == 4
        assert metrics.jobs_meeting_deadline == 0

    def test_headroom_queueing_limits_contention(self):
        # Saturating jobs with moderate deadlines: BAY dispatches them
        # one-ish at a time instead of flooding.
        jobs = [make_job(job_id=i, arrival=(i + 1) * 10 * US,
                         deadline=4 * MS,
                         descriptors=[make_descriptor(name="w", num_wgs=32,
                                                      wg_work=500 * US)])
                for i in range(6)]
        _, metrics = run_jobs(BaymaxScheduler(), jobs)
        assert metrics.jobs_meeting_deadline >= 4


class TestProphet:
    def test_fcfs_dispatch_completes_everything_under_capacity(self):
        _, metrics = run_jobs(ProphetScheduler(), simple_jobs(5))
        assert all(o.completion is not None for o in metrics.outcomes)

    def test_drops_only_hopeless_jobs(self):
        hopeless = make_job(job_id=0, arrival=10 * US, deadline=20 * US,
                            descriptors=[make_descriptor(num_wgs=1,
                                                         wg_work=100 * US)])
        fine = make_job(job_id=1, arrival=10 * US, deadline=10 * MS,
                        descriptors=[make_descriptor(num_wgs=1,
                                                     wg_work=100 * US)])
        _, metrics = run_jobs(ProphetScheduler(), [hopeless, fine])
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert outcome[0].accepted is False
        assert outcome[1].met_deadline

    def test_utilization_cap_queues_excess_threads(self):
        # Each job's peak footprint is half the device's threads; the cap
        # admits two at a time, the rest queue on the host.
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(
                             num_wgs=40, threads_per_wg=256,
                             wg_work=100 * US)])
                for i in range(4)]
        policy = ProphetScheduler(utilization_cap=1.0)
        _, metrics = run_jobs(policy, jobs)
        assert all(o.completion is not None for o in metrics.outcomes)


class TestLaxHostVariants:
    def test_lax_sw_window_limits_inflight_jobs(self):
        policy = LaxSoftwareScheduler(window=2)
        jobs = simple_jobs(6, gap=10 * US, wg_work=200 * US)
        _, metrics = run_jobs(policy, jobs)
        assert all(o.completion is not None or o.accepted is False
                   for o in metrics.outcomes)

    def test_lax_cpu_releases_whole_stream(self):
        descs = [make_descriptor(name=f"k{i}", num_wgs=1, wg_work=20 * US)
                 for i in range(3)]
        job = make_job(arrival=10 * US, deadline=100 * MS, descriptors=descs)
        _, metrics = run_jobs(LaxCpuScheduler(), [job])
        # Device chains kernels itself: latency far below per-kernel
        # host chaining (which would add ~8us per boundary).
        assert metrics.outcomes[0].latency <= (4 + 3 * (2 + 20) + 2) * US

    def test_host_admission_rejects_overload(self):
        # Saturating 25us jobs with 40us deadlines arriving every 5us.
        jobs = [make_job(job_id=i, arrival=(i + 1) * 5 * US,
                         deadline=40 * US,
                         descriptors=[make_descriptor(name="n", num_wgs=32,
                                                      wg_work=25 * US)])
                for i in range(20)]
        _, metrics = run_jobs(LaxSoftwareScheduler(), jobs)
        assert metrics.jobs_rejected > 5
        # The 4us host crossing leaves only ~9us slack on a 40us deadline,
        # so successes are few but strictly better than none.
        assert metrics.jobs_meeting_deadline >= 2

    def test_lax_cpu_meets_more_than_unmanaged_under_pressure(self):
        jobs = [make_job(job_id=i, arrival=(i + 1) * 5 * US,
                         deadline=40 * US,
                         descriptors=[make_descriptor(name="n", num_wgs=32,
                                                      wg_work=25 * US)])
                for i in range(20)]
        from repro.schedulers.rr import RoundRobinScheduler
        _, rr = run_jobs(RoundRobinScheduler(), [
            make_job(job_id=i, arrival=(i + 1) * 5 * US, deadline=40 * US,
                     descriptors=[make_descriptor(name="n", num_wgs=32,
                                                  wg_work=25 * US)])
            for i in range(20)])
        _, lax_cpu = run_jobs(LaxCpuScheduler(), jobs)
        assert (lax_cpu.jobs_meeting_deadline
                > rr.jobs_meeting_deadline)
