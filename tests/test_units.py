"""Unit tests for repro.units (simulated-time conversions)."""

import pytest

from repro import units
from repro.sim import time as sim_time


class TestConstants:
    def test_base_tick_is_nanosecond(self):
        assert units.NS == 1

    def test_microsecond(self):
        assert units.US == 1_000

    def test_millisecond(self):
        assert units.MS == 1_000_000

    def test_second(self):
        assert units.SEC == 1_000_000_000

    def test_units_compose(self):
        assert units.SEC == 1000 * units.MS == 1_000_000 * units.US


class TestConversions:
    def test_from_us(self):
        assert units.from_us(2.5) == 2_500

    def test_from_us_rounds(self):
        assert units.from_us(0.0004) == 0

    def test_from_ms(self):
        assert units.from_ms(7) == 7 * units.MS

    def test_from_seconds(self):
        assert units.from_seconds(0.001) == units.MS

    def test_to_us(self):
        assert units.to_us(2_500) == 2.5

    def test_to_ms(self):
        assert units.to_ms(7_000_000) == 7.0

    def test_to_seconds(self):
        assert units.to_seconds(units.SEC) == 1.0

    def test_round_trip(self):
        for value in (0.0, 1.0, 3.25, 123.456):
            assert units.to_us(units.from_us(value)) == pytest.approx(
                value, abs=1e-3)


class TestFormatTicks:
    def test_nanoseconds(self):
        assert units.format_ticks(999) == "999ns"

    def test_microseconds(self):
        assert units.format_ticks(2_500) == "2.500us"

    def test_milliseconds(self):
        assert units.format_ticks(7_000_000) == "7.000ms"

    def test_seconds(self):
        assert units.format_ticks(1_500_000_000) == "1.500s"

    def test_zero(self):
        assert units.format_ticks(0) == "0ns"


class TestSimTimeAlias:
    def test_reexports_match(self):
        assert sim_time.US == units.US
        assert sim_time.MS == units.MS
        assert sim_time.SEC == units.SEC
        assert sim_time.format_ticks is units.format_ticks
