"""Property tests for streaming arrival sources and job retirement.

Quantified over the whole source family (Poisson, diurnal, MMPP on-off;
random templates, weights, seeds and curve parameters via
``strategies.arrival_sources``) rather than the tuned SUSTAINED cell:

* replay determinism — re-iterating a source yields the same stream;
* arrivals are strictly increasing integers after the stream start;
* the empirical rate of a prefix tracks the declared rate curve;
* under a validated streamed run with retirement on, the checker's
  job-retirement invariant fires once per job and never trips (a job is
  only ever retired after it has released its queue and WG residency).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.units import SEC
from repro.validation import InvariantChecker
from repro.workloads.streaming import DiurnalSource, OnOffSource, PoissonSource

from strategies import arrival_sources


def _job_key(job):
    return (job.job_id, job.arrival, job.benchmark, job.tag, job.deadline,
            job.user_priority,
            tuple(k.descriptor.name for k in job.kernels))


@given(source=arrival_sources())
def test_replaying_a_source_yields_the_same_stream(source):
    first = [_job_key(j) for j in itertools.islice(source.jobs(), 40)]
    second = [_job_key(j) for j in itertools.islice(source.jobs(), 40)]
    assert first == second
    # materialize() is exactly the stream's prefix.
    assert [_job_key(j) for j in source.materialize(10)] == first[:10]


@given(source=arrival_sources(), first_id=st.integers(min_value=0,
                                                      max_value=10**6))
def test_arrivals_strictly_increase_and_ids_are_sequential(source, first_id):
    jobs = list(itertools.islice(source.jobs(first_job_id=first_id), 30))
    arrivals = [job.arrival for job in jobs]
    assert all(isinstance(a, int) for a in arrivals)
    assert all(later > earlier
               for earlier, later in zip(arrivals, arrivals[1:]))
    assert arrivals[0] > source.start
    assert [job.job_id for job in jobs] \
        == list(range(first_id, first_id + 30))


@given(source=arrival_sources())
@settings(max_examples=15)
def test_empirical_rate_tracks_the_declared_curve(source):
    count = 400
    arrivals = [job.arrival
                for job in itertools.islice(source.jobs(), count)]
    span = arrivals[-1] - source.start
    empirical = count / (span / SEC)
    if isinstance(source, PoissonSource):
        low, high = 0.7 * source.rate_jobs_per_s, 1.3 * source.rate_jobs_per_s
    elif isinstance(source, DiurnalSource):
        base, amp = source.base_rate_jobs_per_s, source.amplitude
        low, high = 0.6 * base * (1 - amp), 1.4 * base * (1 + amp)
    else:
        assert isinstance(source, OnOffSource)
        # Burstiness makes short-prefix rates noisy: the empirical rate
        # must land between the off and on rates with wide margin.
        mean = source.mean_rate_jobs_per_s()
        low = min(0.2 * mean, 0.9 * max(source.off_rate_jobs_per_s, 1e-9))
        high = 4.0 * source.on_rate_jobs_per_s
    assert low <= empirical <= high, (low, empirical, high)


@given(source=arrival_sources(), scheduler=st.sampled_from(("LAX", "RR")))
@settings(max_examples=10)
def test_retirement_invariant_holds_on_validated_streamed_runs(
        source, scheduler):
    checker = InvariantChecker()
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       validator=checker, retire=True)
    system.submit_stream(source.jobs(), max_jobs=25)
    metrics = system.run()
    summary = checker.summary()
    # Every job was retired exactly once, after it had released its
    # queue slot and its resident WGs — on_job_retired would have
    # recorded a violation otherwise.
    assert summary["checks"]["job_retirement"] == 25
    assert summary["violations"] == []
    assert metrics.num_jobs == 25
    assert metrics.outcomes == []
