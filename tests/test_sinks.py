"""Unit tests for telemetry sinks and the sink-backed recorders."""

import json

import pytest

from repro.errors import TelemetryError
from repro.sim.trace import TraceRecorder
from repro.telemetry.events import DecisionLog
from repro.telemetry.sinks import (DEFAULT_RING_CAPACITY, JsonlSink,
                                   ListSink, NullSink, RingBufferSink,
                                   make_sink, parse_sink_spec)


class _Record:
    def __init__(self, value):
        self.value = value

    def as_dict(self):
        return {"value": self.value}


class TestParseSinkSpec:
    def test_bare_kinds(self):
        assert parse_sink_spec("list") == ("list", None)
        assert parse_sink_spec("ring") == ("ring", None)
        assert parse_sink_spec("jsonl") == ("jsonl", None)
        assert parse_sink_spec("null") == ("null", None)

    def test_arguments_split(self):
        assert parse_sink_spec("ring:4096") == ("ring", "4096")
        assert parse_sink_spec("jsonl:/tmp/t") == ("jsonl", "/tmp/t")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError, match="unknown sink kind"):
            parse_sink_spec("kafka")


class TestMakeSink:
    def test_builds_each_kind(self, tmp_path):
        assert isinstance(make_sink("list"), ListSink)
        assert isinstance(make_sink("null"), NullSink)
        ring = make_sink("ring:7")
        assert isinstance(ring, RingBufferSink)
        assert ring.capacity == 7
        assert make_sink("ring").capacity == DEFAULT_RING_CAPACITY
        jsonl = make_sink("jsonl", stream="decisions",
                          directory=str(tmp_path))
        assert isinstance(jsonl, JsonlSink)
        assert jsonl.path.endswith("decisions.stream.jsonl")

    def test_jsonl_without_directory_rejected(self):
        with pytest.raises(TelemetryError, match="needs a directory"):
            make_sink("jsonl")

    def test_ring_capacity_must_be_integer(self):
        with pytest.raises(TelemetryError, match="integer"):
            make_sink("ring:many")


class TestListSink:
    def test_total_tracks_backing_list(self):
        sink = ListSink()
        records = [_Record(i) for i in range(3)]
        for record in records:
            sink.append(record)
        assert sink.items() is sink.records
        assert sink.items() == records
        assert sink.total == 3
        assert len(sink) == 3
        assert sink.dropped == 0


class TestRingBufferSink:
    def test_evicts_oldest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.append(_Record(i))
        assert [r.value for r in sink.items()] == [7, 8, 9]
        assert sink.total == 10
        assert sink.retained == 3
        assert sink.dropped == 7

    def test_describe_includes_capacity(self):
        assert RingBufferSink(capacity=5).describe()["capacity"] == 5

    def test_positive_capacity_required(self):
        with pytest.raises(TelemetryError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_buffers_then_spills(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = JsonlSink(str(path), flush_every=4)
        for i in range(10):
            sink.append(_Record(i))
        # Two full buffers spilled, two records still buffered.
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 8
        sink.close()
        lines = path.read_text().strip().split("\n")
        assert [json.loads(l)["value"] for l in lines] == list(range(10))
        assert sink.total == 10
        assert sink.retained == 0
        assert sink.dropped == 10

    def test_read_back_round_trips(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "s.jsonl"), flush_every=100)
        for i in range(5):
            sink.append(_Record(i))
        assert [r["value"] for r in sink.read_back()] == list(range(5))

    def test_empty_stream_leaves_valid_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert path.exists()
        assert path.read_text() == ""

    def test_describe_includes_path(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        assert sink.describe()["path"].endswith("s.jsonl")

    def test_positive_flush_every_required(self, tmp_path):
        with pytest.raises(TelemetryError):
            JsonlSink(str(tmp_path / "s.jsonl"), flush_every=0)


class TestNullSink:
    def test_counts_and_drops(self):
        sink = NullSink()
        for i in range(4):
            sink.append(_Record(i))
        assert sink.total == 4
        assert sink.items() == []
        assert len(sink) == 0


class TestTraceRecorderSinks:
    def test_default_sink_is_list(self):
        trace = TraceRecorder()
        assert trace.sink.kind == "list"
        trace.emit(5, "job_arrival", job_id=1)
        assert trace.events[0].kind == "job_arrival"

    def test_counts_exact_under_bounded_sink(self):
        trace = TraceRecorder(sink=RingBufferSink(capacity=2))
        for t in range(6):
            trace.emit(t, "job_arrival", job_id=t)
        trace.emit(9, "job_complete", job_id=0)
        assert len(trace.events) == 2  # retention bounded...
        assert trace.counts() == {"job_arrival": 6,
                                  "job_complete": 1}  # ...counts exact

    def test_to_jsonl_copies_spill_file(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "events.stream.jsonl"),
                         flush_every=2)
        trace = TraceRecorder(sink=sink)
        for t in range(5):
            trace.emit(t, "job_arrival", job_id=t)
        out = tmp_path / "events.jsonl"
        count = trace.to_jsonl(str(out))
        assert count == 5
        lines = out.read_text().strip().split("\n")
        assert len(lines) == 5
        assert json.loads(lines[0])["kind"] == "job_arrival"

    def test_null_sink_drops_but_counts(self):
        trace = TraceRecorder(sink=NullSink())
        trace.emit(1, "job_arrival", job_id=1)
        assert trace.events == []
        assert trace.counts() == {"job_arrival": 1}


class TestDecisionLogSinks:
    def test_bounded_log_keeps_exact_counts(self):
        log = DecisionLog(sink=RingBufferSink(capacity=1))
        for t in range(4):
            log.emit(t, "queue_rotation", scheduler="RR",
                     pointer=t, previous=t - 1, served=True)
        assert len(log) == 4  # __len__ is the stream total
        assert len(log.events) == 1
        assert log.counts() == {"queue_rotation": 4}

    def test_jsonl_log_exports(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "decisions.stream.jsonl"))
        log = DecisionLog(sink=sink)
        log.emit(3, "queue_rotation", scheduler="RR",
                 pointer=1, previous=0, served=True)
        out = tmp_path / "decisions.jsonl"
        assert log.to_jsonl(str(out)) == 1
        assert json.loads(out.read_text())["kind"] == "queue_rotation"
