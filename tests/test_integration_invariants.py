"""End-to-end invariant tests: every scheduler, every benchmark family.

These run small but complete workloads through the full system and assert
the conservation laws any correct run must satisfy, regardless of policy:

* every arrived job terminates (completed or rejected);
* completed jobs executed exactly their WG count (plus re-executions);
* rejected-at-arrival jobs executed nothing;
* the device ends empty (no resident WGs, no bound queues);
* executed work matches the energy meter's busy lane-time;
* deterministic: same seed -> same outcome.
"""

import pytest

from repro.config import SimConfig
from repro.schedulers.registry import ALL_SCHEDULERS, make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import JobState
from repro.workloads.registry import build_workload

#: One representative of each workload family, kept small for speed.
FAMILIES = [("IPV6", 16), ("GMM", 12), ("LSTM", 8)]


def run(benchmark, scheduler, num_jobs, seed=1):
    config = SimConfig()
    jobs = build_workload(benchmark, "medium", num_jobs=num_jobs, seed=seed,
                          gpu=config.gpu)
    system = GPUSystem(make_scheduler(scheduler), config)
    system.submit_workload(jobs)
    metrics = system.run()
    return system, jobs, metrics


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
@pytest.mark.parametrize("bench,num_jobs", FAMILIES)
class TestUniversalInvariants:
    def test_every_job_terminates(self, scheduler, bench, num_jobs):
        _, jobs, _ = run(bench, scheduler, num_jobs)
        for job in jobs:
            assert job.state in (JobState.COMPLETED, JobState.REJECTED), \
                f"job {job.job_id} stuck in {job.state}"

    def test_completed_jobs_did_their_work(self, scheduler, bench,
                                           num_jobs):
        _, jobs, metrics = run(bench, scheduler, num_jobs)
        outcomes = {o.job_id: o for o in metrics.outcomes}
        for job in jobs:
            outcome = outcomes[job.job_id]
            if job.state is JobState.COMPLETED:
                assert outcome.wgs_executed >= job.total_wgs
                assert all(k.is_done for k in job.kernels)

    def test_never_started_rejects_execute_nothing(self, scheduler,
                                                   bench, num_jobs):
        _, jobs, metrics = run(bench, scheduler, num_jobs)
        outcomes = {o.job_id: o for o in metrics.outcomes}
        for job in jobs:
            if (job.state is JobState.REJECTED
                    and job.first_issue_time is None):
                assert outcomes[job.job_id].wgs_executed == 0

    def test_device_drains(self, scheduler, bench, num_jobs):
        system, _, _ = run(bench, scheduler, num_jobs)
        assert system.pool.num_bound == 0
        assert not system.pool.backlog
        for cu in system.dispatcher.cus:
            assert cu.num_residents == 0
            assert cu.used_threads == 0
            assert cu.used_vgpr == 0

    def test_deterministic(self, scheduler, bench, num_jobs):
        _, _, first = run(bench, scheduler, num_jobs, seed=3)
        _, _, second = run(bench, scheduler, num_jobs, seed=3)
        assert ([(o.job_id, o.completion, o.accepted)
                 for o in first.outcomes]
                == [(o.job_id, o.completion, o.accepted)
                    for o in second.outcomes])


@pytest.mark.parametrize("scheduler", ["RR", "LAX", "PREMA", "BAY"])
class TestWorkConservation:
    def test_energy_matches_executed_work(self, scheduler):
        system, jobs, metrics = run("GMM", scheduler, 10)
        executed_work = sum(cu.work_done for cu in system.dispatcher.cus)
        # Busy lane-time in the meter equals the CUs' accounted work.
        assert system.energy.busy_lane_seconds * 1e9 == pytest.approx(
            executed_work, rel=1e-9)

    def test_completed_wgs_do_not_exceed_issued(self, scheduler):
        system, _, metrics = run("GMM", scheduler, 10)
        assert metrics.wg_completions <= system.dispatcher.wgs_issued

    def test_latency_at_least_isolated_time(self, scheduler):
        system, jobs, metrics = run("GMM", scheduler, 10)
        outcomes = {o.job_id: o for o in metrics.outcomes}
        for job in jobs:
            outcome = outcomes[job.job_id]
            if outcome.completion is not None:
                assert outcome.latency >= job.isolated_time(
                    system.config.gpu)
