"""Coverage for smaller surfaces: errors, exports, summary, CLI trace."""

import json

import pytest

import repro
from repro import errors
from repro.cli import main
from repro.harness.summary import wasted_work_by_scheduler, grid_results
from repro.schedulers.registry import EXTENSION_SCHEDULERS, PAPER_SCHEDULERS


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("ConfigError", "SimulationError", "SchedulingError",
                     "ResourceError", "WorkloadError", "HarnessError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_scheduling_and_resource_are_simulation_errors(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
        assert issubclass(errors.ResourceError, errors.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("boom")


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_matches_pyproject(self):
        import pathlib
        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_scheduler_partition(self):
        assert set(PAPER_SCHEDULERS) | set(EXTENSION_SCHEDULERS) == set(
            repro.ALL_SCHEDULERS)
        assert not set(PAPER_SCHEDULERS) & set(EXTENSION_SCHEDULERS)

    def test_workloads_all_resolve(self):
        from repro import workloads
        for name in workloads.__all__:
            assert hasattr(workloads, name), name

    def test_sim_all_resolve(self):
        from repro import sim
        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_core_all_resolve(self):
        from repro import core
        for name in core.__all__:
            assert hasattr(core, name), name


class TestSummaryHelpers:
    def test_wasted_work_by_scheduler(self):
        grid = grid_results(["IPV6"], ["RR", "LAX"], num_jobs=12)
        wasted = wasted_work_by_scheduler(grid)
        assert set(wasted) == {"RR", "LAX"}
        assert 0.0 <= wasted["LAX"] <= 1.0
        assert wasted["LAX"] <= wasted["RR"]


class TestCliTrace:
    def test_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main(["--benchmark", "IPV6", "--scheduler", "LAX",
                     "--jobs", "8", "--trace", str(path)])
        assert code == 0
        lines = path.read_text().splitlines()
        assert lines
        assert json.loads(lines[0])["kind"] == "job_arrival"
        assert "wrote" in capsys.readouterr().out

    def test_trace_csv(self, tmp_path):
        path = tmp_path / "run.csv"
        assert main(["--benchmark", "STEM", "--jobs", "8",
                     "--trace", str(path)]) == 0
        assert path.read_text().startswith("time,kind")

    def test_trace_rejects_other_extensions(self, capsys):
        assert main(["--benchmark", "IPV6", "--jobs", "8",
                     "--trace", "run.parquet"]) == 2
