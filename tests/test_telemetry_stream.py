"""End-to-end tests for the streaming telemetry pipeline.

Covers the PR's acceptance criteria: sink choice never perturbs
simulation results, the JSONL sink holds telemetry memory flat on long
runs, the streamed Perfetto export is byte-identical to the in-memory
document, and report bundles carry (and gracefully omit) the windowed
series.
"""

import json
import os
import tracemalloc

import pytest

import repro.sim.trace as trace_mod
import repro.telemetry.sinks as sinks_mod
import repro.telemetry.windows as windows_mod
from repro.cli import main
from repro.harness.experiment import ExperimentSpec, run_cell
from repro.telemetry import (TelemetryHub, build_chrome_trace,
                             render_markdown, validate_bundle,
                             write_bundle, write_chrome_trace)
from repro.units import MS


def _signature(metrics):
    """Everything a run decides, as a comparable value."""
    return ([(o.job_id, o.accepted, o.completion, o.wgs_executed)
             for o in metrics.outcomes],
            metrics.end_time, metrics.total_energy_joules,
            metrics.wg_completions)


def _spec(num_jobs=24):
    return ExperimentSpec(benchmark="LSTM", scheduler="LAX",
                          rate_level="high", num_jobs=num_jobs)


class TestSinkSwapBitIdentity:
    def test_results_identical_across_sinks(self, tmp_path):
        baseline = run_cell(_spec())
        for spec_string in ("list", "ring:64", "null", "jsonl"):
            hub = TelemetryHub(wg_events=True, sink=spec_string,
                               sink_dir=str(tmp_path / spec_string))
            result = run_cell(_spec(), telemetry=hub)
            assert _signature(result.metrics) == \
                _signature(baseline.metrics), spec_string

    def test_windows_and_monitor_do_not_perturb(self, tmp_path):
        baseline = run_cell(_spec())
        hub = TelemetryHub(window=2 * MS, slo_monitor=True)
        result = run_cell(_spec(), telemetry=hub)
        assert _signature(result.metrics) == _signature(baseline.metrics)
        assert hub.windows.windows_closed > 0

    def test_stream_totals_identical_across_sinks(self, tmp_path):
        hub_list = TelemetryHub(wg_events=True)
        run_cell(_spec(), telemetry=hub_list)
        hub_jsonl = TelemetryHub(wg_events=True, sink="jsonl",
                                 sink_dir=str(tmp_path))
        run_cell(_spec(), telemetry=hub_jsonl)
        assert hub_jsonl.trace.sink.total == hub_list.trace.sink.total
        assert hub_jsonl.trace.counts() == hub_list.trace.counts()
        spilled = sum(1 for _ in hub_jsonl.trace.sink.read_back())
        assert spilled == hub_list.trace.sink.total


class TestFlatMemory:
    def _telemetry_peak(self, num_jobs, tmp_path, sink):
        """Peak bytes retained by telemetry modules during one run."""
        hub = TelemetryHub(wg_events=True, sink=sink,
                           sink_dir=str(tmp_path / f"run{num_jobs}"),
                           window=1 * MS)
        tracemalloc.start()
        run_cell(_spec(num_jobs=num_jobs), telemetry=hub)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        telemetry_files = {trace_mod.__file__, sinks_mod.__file__,
                           windows_mod.__file__}
        return sum(stat.size for stat in snapshot.statistics("filename")
                   if stat.traceback[0].filename in telemetry_files)

    def test_jsonl_sink_memory_flat_over_run_length(self, tmp_path):
        short = self._telemetry_peak(6, tmp_path, "jsonl")
        long = self._telemetry_peak(36, tmp_path, "jsonl")
        assert long <= 2 * max(short, 1), (short, long)

    def test_list_sink_memory_grows_with_run_length(self, tmp_path):
        short = self._telemetry_peak(6, tmp_path, "list")
        long = self._telemetry_peak(36, tmp_path, "list")
        assert long > 2 * short, (short, long)


class TestStreamedPerfetto:
    def test_streamed_file_byte_identical_to_document(self, tmp_path):
        hub = TelemetryHub(wg_events=True, window=2 * MS)
        result = run_cell(_spec(), telemetry=hub)
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, hub.trace, decisions=hub.decisions,
                                   outcomes=result.metrics.outcomes,
                                   windows=hub.windows.records)
        document = build_chrome_trace(hub.trace, decisions=hub.decisions,
                                      outcomes=result.metrics.outcomes,
                                      windows=hub.windows.records)
        assert count == len(document["traceEvents"])
        with open(path, encoding="utf-8") as source:
            assert source.read() == json.dumps(document)

    def test_windows_render_as_counter_track(self, tmp_path):
        from repro.telemetry import PID_WINDOWS
        hub = TelemetryHub(window=2 * MS)
        run_cell(_spec(), telemetry=hub)
        document = build_chrome_trace(hub.trace, windows=hub.windows.records)
        window_events = [e for e in document["traceEvents"]
                         if e["pid"] == PID_WINDOWS]
        assert any(e["ph"] == "C" for e in window_events)
        assert any(e.get("name") == "window throughput (jobs/s)"
                   for e in window_events)

    def test_no_windows_process_without_windows(self):
        from repro.telemetry import PID_WINDOWS
        hub = TelemetryHub()
        run_cell(_spec(), telemetry=hub)
        document = build_chrome_trace(hub.trace)
        assert not any(e["pid"] == PID_WINDOWS
                       for e in document["traceEvents"])


class TestBundleWindows:
    def test_bundle_carries_window_series(self, tmp_path):
        hub = TelemetryHub(window=2 * MS, slo_monitor=True)
        result = run_cell(_spec(), telemetry=hub)
        directory = str(tmp_path / "bundle")
        paths = write_bundle(directory, hub, result.metrics, label="cell",
                             diagnostics=result.diagnostics)
        assert validate_bundle(directory)["trace_events"] > 0
        assert "windows.jsonl" in paths
        lines = open(paths["windows.jsonl"]).read().strip().split("\n")
        assert len(lines) == hub.windows.windows_closed
        report = json.load(open(os.path.join(directory, "report.json")))
        windows_doc = report["windows"]
        assert windows_doc["windows_closed"] == hub.windows.windows_closed
        assert len(windows_doc["series"]) == hub.windows.windows_closed
        assert "monitor" in windows_doc
        assert "## Windowed metrics" in \
            open(os.path.join(directory, "report.md")).read()

    def test_report_without_windows_degrades_gracefully(self):
        hub = TelemetryHub()
        result = run_cell(_spec(), telemetry=hub)
        from repro.telemetry import build_report
        report = build_report(result.metrics, hub, label="cell")
        assert "windows" not in report
        markdown = render_markdown(report)
        assert "## Windowed metrics" not in markdown

    def test_render_markdown_tolerates_pre_window_reports(self):
        # A report dict written before windowed metrics existed: the
        # renderer must not KeyError on the absent sections.
        old_report = {
            "format": "repro-run-report-v1",
            "label": "old",
            "summary": {
                "jobs_arrived": 1, "jobs_meeting_deadline": 1,
                "jobs_rejected": 0, "latency_sensitive_jobs": 1,
                "deadline_ratio": 1.0, "p99_latency_ms": 1.0,
                "makespan_ms": 2.0, "wasted_wg_fraction": 0.0,
                "energy_per_successful_job_mj": None,
            },
        }
        markdown = render_markdown(old_report)
        assert "# Run report — old" in markdown
        assert "## Windowed metrics" not in markdown


class TestCliStreaming:
    def test_window_and_monitor_flags(self, capsys):
        code = main(["--benchmark", "LSTM", "--scheduler", "LAX",
                     "--jobs", "12", "--window", "2", "--slo-monitor",
                     "--no-cache"])
        assert code == 0
        err = capsys.readouterr().err
        assert "w=0" in err
        assert "p99=" in err

    def test_jsonl_sink_with_bundle(self, tmp_path, capsys):
        out = str(tmp_path / "bundle")
        code = main(["--benchmark", "LSTM", "--scheduler", "LAX",
                     "--jobs", "12", "--sink", "jsonl", "--window", "2",
                     "--emit-telemetry", out, "--no-cache"])
        assert code == 0
        assert os.path.isfile(os.path.join(out, "events.stream.jsonl"))
        assert os.path.isfile(os.path.join(out, "windows.jsonl"))
        assert validate_bundle(out)["trace_events"] > 0
        assert "telemetry sink jsonl" in capsys.readouterr().out

    def test_report_from_bundle(self, tmp_path, capsys):
        out = str(tmp_path / "bundle")
        assert main(["--benchmark", "LSTM", "--scheduler", "LAX",
                     "--jobs", "12", "--window", "2",
                     "--emit-telemetry", out, "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["report", "--from-bundle", out]) == 0
        markdown = capsys.readouterr().out
        assert "# Run report" in markdown
        assert "## Windowed metrics" in markdown

    def test_report_from_bundle_without_windows(self, tmp_path, capsys):
        out = str(tmp_path / "bundle")
        assert main(["--benchmark", "LSTM", "--scheduler", "LAX",
                     "--jobs", "12", "--emit-telemetry", out,
                     "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["report", "--from-bundle", out]) == 0
        markdown = capsys.readouterr().out
        assert "# Run report" in markdown
        assert "## Windowed metrics" not in markdown

    def test_slo_monitor_requires_window(self, capsys):
        assert main(["--slo-monitor"]) == 2
        assert "--window" in capsys.readouterr().out

    def test_unknown_sink_rejected(self, capsys):
        assert main(["--sink", "kafka"]) == 2
        assert "unknown sink kind" in capsys.readouterr().out

    def test_jsonl_sink_needs_directory(self, capsys):
        assert main(["--sink", "jsonl"]) == 2
        assert "jsonl" in capsys.readouterr().out

    def test_from_bundle_requires_report_command(self, capsys):
        assert main(["--from-bundle", "somewhere"]) == 2
        assert "report" in capsys.readouterr().out

    def test_from_bundle_missing_report(self, tmp_path, capsys):
        assert main(["report", "--from-bundle", str(tmp_path)]) == 2
        assert "no report.json" in capsys.readouterr().out
