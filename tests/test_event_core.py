"""Event-core (PR 10) differential family.

The event-core mode bundles eight flags (calendar queue, fused
continuations, counted pump, flattened admission, slot cache, fused
timer drain, live cache, job pool); :mod:`test_modes_matrix` proves the
bundle reproduces the seed decisions on the 2^5 cross-product.  This
module tests the *mechanisms* directly:

* the calendar queue fires events in the exact (when, seq) order of the
  seed binary heap, including the negative-seq arrival lane at tied
  timestamps and bucket-boundary crossings;
* the per-bucket minima that drive the fused run loop's exact peek stay
  consistent with the bucket contents;
* event fusion preserves the committed event sequence
  (``events_committed`` is mode-invariant even though ``events_fired``
  is not);
* the O(1) structures that replace per-event scans — the dispatcher's
  standing pending set and LAX's admission reserve counter — always
  agree with the scans they replace, asserted *during* live runs;
* the flattened ``outstanding_sum`` returns the exact float of the
  generic Algorithm-1 helper it replaces;
* the job pool recycles without leaking state across jobs.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.core.admission import total_outstanding_time
from repro.core.laxity import RemainingTimeCache, estimate_remaining_time
from repro.schedulers.lax import LaxityScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim import job_pool
from repro.sim.device import GPUSystem
from repro.sim.dispatcher import WGDispatcher
from repro.sim.engine import Simulator, _BUCKET_SHIFT
from repro.sim.job import JobState
from repro.sim.modes import event_core_mode
from repro.workloads.streaming import (SUSTAINED_RATES,
                                       build_sustained_jobs,
                                       sustained_source)

RATE = SUSTAINED_RATES["high"]
BUCKET = 1 << _BUCKET_SHIFT


def _cell(scheduler="LAX", num_jobs=150, retire=True):
    """One streamed mini sustained cell under the ambient mode flags."""
    system = GPUSystem(make_scheduler(scheduler), SimConfig(), retire=retire)
    system.submit_stream(sustained_source(RATE).jobs(), max_jobs=num_jobs)
    metrics = system.run()
    return system, metrics


def _signature(system, metrics):
    admission = getattr(system.policy, "admission", None)
    return (
        metrics.num_jobs,
        metrics.jobs_meeting_deadline,
        metrics.jobs_rejected,
        metrics.wg_completions,
        metrics.end_time,
        metrics.p99_latency_ticks,
        system.dispatcher.wgs_issued,
        system.sim.events_committed,
        (admission.accepted, admission.rejected, admission.fast_accepted,
         admission.late_rejected) if admission is not None else None,
    )


# ----------------------------------------------------------------------
# Calendar queue ordering
# ----------------------------------------------------------------------

class TestWheelOrdering:
    def _record_run(self, wheeled, plan):
        """Fire ``plan`` on one simulator; return the observed order.

        ``plan`` is a list of (when, lane) with lane "arrival" riding
        :meth:`schedule_arrival` and lane "device" riding
        :meth:`schedule_at`.
        """
        with event_core_mode(wheeled):
            sim = Simulator()
            fired = []
            for index, (when, lane) in enumerate(plan):
                if lane == "arrival":
                    sim.schedule_arrival(when, fired.append,
                                         ("arrival", when, index))
                else:
                    sim.schedule_at(when, fired.append,
                                    ("device", when, index))
            sim.run()
        return fired

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3 * BUCKET),
                  st.sampled_from(["arrival", "device"])),
        min_size=1, max_size=40))
    def test_wheel_matches_heap_order(self, plan):
        """Wheel and heap fire any schedule in the identical sequence."""
        assert self._record_run(True, plan) == self._record_run(False, plan)

    def test_arrival_lane_precedes_device_events_at_tied_ticks(self):
        """The negative-seq arrival lane wins every same-tick tie, even
        when the device event was scheduled first (streamed lookahead=1
        delivers arrivals from inside handlers, so this ordering is what
        makes streamed == finite)."""
        for wheeled in (False, True):
            fired = self._record_run(
                wheeled,
                [(5, "device"), (5, "arrival"), (5, "device"),
                 (5, "arrival")])
            assert [kind for kind, _, _ in fired] == [
                "arrival", "arrival", "device", "device"]

    def test_cross_bucket_ordering_with_ties(self):
        """Events straddling bucket boundaries keep global order."""
        edge = BUCKET
        plan = [(edge, "device"), (edge - 1, "device"), (edge, "arrival"),
                (edge + 1, "device"), (2 * edge, "device"),
                (edge - 1, "arrival")]
        assert (self._record_run(True, plan)
                == self._record_run(False, plan))

    def test_bucket_mins_track_bucket_contents(self):
        """Every future bucket's maintained min is its true minimum."""
        with event_core_mode(True):
            sim = Simulator()
            for when in (1, 7, BUCKET + 3, BUCKET + 1, 5 * BUCKET,
                         5 * BUCKET + 9, 2 * BUCKET):
                sim.schedule_at(when, lambda: None)
            assert sim._buckets, "expected future buckets"
            for b, entries in sim._buckets.items():
                assert sim._bucket_mins[b] == min(e[:2] for e in entries)
            # A cancelled entry may keep holding a bucket's min: that is
            # allowed (it only costs a coalescing opportunity) — the min
            # must still never be *later* than any live entry.
            victim = min(sim._buckets)
            entries = sim._buckets[victim]
            min_entry = min(entries, key=lambda e: e[:2])
            min_entry[2].cancel()
            assert sim._bucket_mins[victim] <= min(
                e[:2] for e in entries if not e[2].cancelled)
            sim.run()


# ----------------------------------------------------------------------
# Event fusion
# ----------------------------------------------------------------------

class TestFusionIdentity:
    def test_committed_sequence_is_mode_invariant(self):
        with event_core_mode(False):
            off = _signature(*_cell())
        with event_core_mode(True):
            on_system, on_metrics = _cell()
            on = _signature(on_system, on_metrics)
        assert on == off
        stats = on_system.sim.event_core_stats()
        assert stats["events_coalesced"] > 0, (
            "the sustained cell must exercise the fused path")
        assert stats["events_committed"] == (
            stats["events_fired"] + stats["events_coalesced"])
        assert stats["wheel_pops"] == stats["events_fired"]

    def test_event_core_stats_off_mode(self):
        with event_core_mode(False):
            system, _ = _cell(num_jobs=40)
        stats = system.sim.event_core_stats()
        assert stats["wheeled"] is False
        assert stats["events_coalesced"] == 0
        assert stats["heap_pops"] == stats["events_fired"]


# ----------------------------------------------------------------------
# O(1) structures vs the scans they replace
# ----------------------------------------------------------------------

class TestReserveCounter:
    def test_counter_matches_ready_scan_throughout_a_run(self, monkeypatch):
        """LAX's O(1) admission reserve equals the seed READY scan at
        every single consult of a live streamed run."""
        orig = LaxityScheduler._reserved_wgs
        consults = []

        def checked(self, candidate):
            value = orig(self, candidate)
            scan = 0
            for job in self.ctx.live_jobs():
                if job is candidate or job.state is not JobState.READY:
                    continue
                kernel = job.next_kernel()
                if kernel is not None:
                    scan += kernel.wgs_pending
            assert value == scan, (
                f"reserve counter {value} != READY scan {scan} "
                f"at t={self.ctx.now}")
            consults.append(value)
            return value

        monkeypatch.setattr(LaxityScheduler, "_reserved_wgs", checked)
        with event_core_mode(True):
            _cell(num_jobs=200)
        assert consults, "admission never consulted the reserve"
        assert any(value > 0 for value in consults), (
            "the cell never had a READY backlog; the property is vacuous")


class TestPendingSet:
    def test_pending_set_matches_active_scan_throughout_a_run(
            self, monkeypatch):
        """The standing pending set equals the per-pump wgs_pending scan
        over the active kernels at every pump."""
        orig = WGDispatcher._pump_once

        def checked(self):
            if self.counted:
                scan = [k for k in self._active
                        if k.descriptor.num_wgs > k.wgs_issued]
                assert list(self._pending_set) == scan, (
                    f"pending set diverged from the active scan "
                    f"at t={self._sim.now}")
            return orig(self)

        monkeypatch.setattr(WGDispatcher, "_pump_once", checked)
        with event_core_mode(True):
            _cell(num_jobs=150)


class TestOutstandingSum:
    def test_flattened_sum_equals_generic_helper(self, monkeypatch):
        """``outstanding_sum`` returns the generic Algorithm-1 helper's
        exact float at every admission of a live run."""
        orig = RemainingTimeCache.outstanding_sum
        checked_calls = []

        def checked(self, jobs, now, exclude=None):
            jobs = list(jobs)
            value = orig(self, jobs, now, exclude)
            values = self._values

            def cached_estimate(job, table, time):
                # Pure read: ``orig`` just warmed the cache for every
                # contributing job, so this recomputes nothing and
                # mutates nothing.
                entry = values.get(job.job_id)
                if entry is not None and entry[0] == job.rank_version:
                    return entry[1]
                return estimate_remaining_time(job, table, time)

            reference = total_outstanding_time(
                jobs, self._table, now, exclude=exclude,
                estimate=cached_estimate)
            assert value == reference
            checked_calls.append(value)
            return value

        monkeypatch.setattr(RemainingTimeCache, "outstanding_sum", checked)
        with event_core_mode(True):
            _cell(num_jobs=200)
        assert checked_calls, "no admission took the slow path"


# ----------------------------------------------------------------------
# Job pool
# ----------------------------------------------------------------------

class TestJobPool:
    def test_pool_recycles_on_the_sustained_cell(self):
        with event_core_mode(True):
            _, metrics = _cell(num_jobs=150)
        stats = job_pool.stats()
        assert stats["enabled"] is True
        assert stats["hits"] > 0, "retirement should feed the pool"
        assert stats["recycled"] > 0
        assert metrics.num_jobs == 150

    def test_pool_off_produces_identical_run(self):
        with event_core_mode(True):
            reference = _signature(*_cell(num_jobs=120))
        with event_core_mode(True):
            job_pool.ENABLED = False
            try:
                bare = _signature(*_cell(num_jobs=120))
            finally:
                job_pool.ENABLED = True
        assert bare == reference


# ----------------------------------------------------------------------
# Streamed-run equivalence under the full event core (hypothesis)
# ----------------------------------------------------------------------

class TestStreamedEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=30, max_value=90))
    def test_streamed_retired_prefix_matches_finite(self, num_jobs):
        """Any prefix length: streamed lookahead=1 + retirement +
        event core reproduces the finite, non-retired reference run's
        decisions (arrival-lane ordering is what makes this hold)."""
        with event_core_mode(True):
            streamed = _signature(*_cell(num_jobs=num_jobs, retire=True))
        with event_core_mode(False):
            jobs = build_sustained_jobs(num_jobs, RATE, 1, SimConfig().gpu)
            finite_system = GPUSystem(make_scheduler("LAX"), SimConfig(),
                                      retire=False)
            finite_system.submit_workload(jobs)
            finite_metrics = finite_system.run()
            finite = _signature(finite_system, finite_metrics)
        assert streamed == finite

    def test_per_job_outcomes_identical_without_retirement(self):
        rows = {}
        for flag in (False, True):
            with event_core_mode(flag):
                _, metrics = _cell(num_jobs=80, retire=False)
            rows[flag] = [dataclasses.astuple(o) for o in metrics.outcomes]
        assert rows[True] == rows[False]
        assert rows[True], "the mini cell must record outcomes"
