"""Tests for DAG-structured streams (HSA-style kernel dependency graphs)."""

import pytest

from repro.config import SimConfig
from repro.errors import WorkloadError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import Job, JobState
from repro.units import MS, US

from conftest import make_descriptor, make_job


def diamond_job(job_id=0, arrival=0, deadline=100 * MS, wg_work=100 * US):
    """k0 -> (k1, k2) -> k3: the classic fork-join diamond."""
    descriptors = [make_descriptor(name=f"k{i}", num_wgs=2, wg_work=wg_work)
                   for i in range(4)]
    return Job(job_id=job_id, benchmark="DAG", descriptors=descriptors,
               arrival=arrival, deadline=deadline,
               dependencies={1: (0,), 2: (0,), 3: (1, 2)})


class TestValidation:
    def test_forward_dependency_rejected(self):
        with pytest.raises(WorkloadError):
            Job(0, "X", [make_descriptor(), make_descriptor()], 0, MS,
                dependencies={0: (1,)})

    def test_self_dependency_rejected(self):
        with pytest.raises(WorkloadError):
            Job(0, "X", [make_descriptor(), make_descriptor()], 0, MS,
                dependencies={1: (1,)})

    def test_unknown_kernel_index_rejected(self):
        with pytest.raises(WorkloadError):
            Job(0, "X", [make_descriptor()], 0, MS, dependencies={5: (0,)})

    def test_chain_job_has_implicit_dependencies(self):
        job = make_job(descriptors=[make_descriptor(name="a"),
                                    make_descriptor(name="b")])
        assert not job.is_dag
        assert job.kernel_dependencies(0) == ()
        assert job.kernel_dependencies(1) == (0,)


class TestReadiness:
    def test_only_roots_ready_initially(self):
        job = diamond_job()
        job.released_kernels = 4
        ready = [k.index for k in job.ready_kernels()]
        assert ready == [0]

    def test_fork_opens_after_root(self):
        job = diamond_job()
        job.released_kernels = 4
        root = job.kernels[0]
        root.mark_active(0)
        root.note_wg_issued(0)
        root.note_wg_issued(0)
        root.note_wg_completed(1)
        root.note_wg_completed(1)
        ready = [k.index for k in job.ready_kernels()]
        assert ready == [1, 2]

    def test_release_marker_gates_dag_too(self):
        job = diamond_job()
        job.released_kernels = 1
        root = job.kernels[0]
        root.mark_active(0)
        root.note_wg_issued(0)
        root.note_wg_issued(0)
        root.note_wg_completed(1)
        root.note_wg_completed(1)
        assert job.ready_kernels() == []

    def test_independent_kernels_all_ready(self):
        descs = [make_descriptor(name=f"k{i}", num_wgs=1) for i in range(3)]
        job = Job(0, "X", descs, 0, MS,
                  dependencies={0: (), 1: (), 2: ()})
        job.released_kernels = 3
        assert [k.index for k in job.ready_kernels()] == [0, 1, 2]


class TestExecution:
    def test_diamond_fork_runs_concurrently(self):
        job = diamond_job(wg_work=100 * US)
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([job])
        metrics = system.run()
        assert job.state is JobState.COMPLETED
        k1, k2 = job.kernels[1], job.kernels[2]
        # The forked kernels overlap in time (each runs 100 us; if they
        # were serialised the second would start after the first ends).
        assert k1.first_issue_time < k2.finish_time
        assert k2.first_issue_time < k1.finish_time

    def test_join_waits_for_both_branches(self):
        job = diamond_job()
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([job])
        system.run()
        k3 = job.kernels[3]
        assert k3.first_issue_time >= job.kernels[1].finish_time
        assert k3.first_issue_time >= job.kernels[2].finish_time

    def test_dag_faster_than_equivalent_chain(self):
        dag = diamond_job(job_id=0)
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([dag])
        dag_latency = system.run().outcomes[0].latency

        chain = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(name=f"k{i}", num_wgs=2, wg_work=100 * US)
            for i in range(4)])
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([chain])
        chain_latency = system.run().outcomes[0].latency
        assert dag_latency < chain_latency

    @pytest.mark.parametrize("scheduler", ["RR", "LAX", "SJF", "PREMA"])
    def test_dag_jobs_complete_under_any_cp_policy(self, scheduler):
        jobs = [diamond_job(job_id=i, arrival=(i + 1) * 50 * US)
                for i in range(4)]
        system = GPUSystem(make_scheduler(scheduler), SimConfig())
        system.submit_workload(jobs)
        metrics = system.run()
        assert all(o.completion is not None or o.accepted is False
                   for o in metrics.outcomes)

    def test_lax_estimates_cover_dag_jobs(self):
        # The WGList sum does not care about edge structure; admission and
        # laxity work unchanged for DAG jobs.
        jobs = [diamond_job(job_id=i, arrival=(i + 1) * 20 * US,
                            deadline=2 * MS, wg_work=300 * US)
                for i in range(40)]
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        system.submit_workload(jobs)
        metrics = system.run()
        assert metrics.jobs_meeting_deadline > 0
        assert metrics.jobs_rejected > 0
