"""Unit tests for the Job Table (Section 4.2), incl. the 4240-byte claim."""

import pytest

from repro.core.job_table import (ENTRY_BYTES, JobTable, job_table_bytes)
from repro.errors import SimulationError
from repro.harness.paper_expected import PAPER_JOB_TABLE_BYTES

from conftest import make_descriptor, make_job


def tabled_job(job_id=0, queue_id=None, num_wgs=4):
    job = make_job(job_id=job_id,
                   descriptors=[make_descriptor(num_wgs=num_wgs)])
    job.mark_enqueued(0, queue_id if queue_id is not None else job_id)
    return job


class TestMemoryFootprint:
    def test_matches_paper_for_128_queues(self):
        assert job_table_bytes(128) == PAPER_JOB_TABLE_BYTES == 4240

    def test_scales_linearly_with_queues(self):
        assert job_table_bytes(256) - job_table_bytes(128) == 128 * ENTRY_BYTES

    def test_instance_reports_provisioned_memory(self):
        assert JobTable(128).memory_bytes == 4240


class TestTableOperations:
    def test_insert_and_get(self):
        table = JobTable(4)
        job = tabled_job(queue_id=2)
        entry = table.insert(job)
        assert table.get(2) is entry
        assert entry.deadline == job.deadline
        assert entry.state == "init"

    def test_insert_requires_queue_binding(self):
        table = JobTable(4)
        with pytest.raises(SimulationError):
            table.insert(make_job())

    def test_duplicate_queue_rejected(self):
        table = JobTable(4)
        table.insert(tabled_job(job_id=0, queue_id=1))
        with pytest.raises(SimulationError):
            table.insert(tabled_job(job_id=1, queue_id=1))

    def test_capacity_enforced(self):
        table = JobTable(1)
        table.insert(tabled_job(job_id=0, queue_id=0))
        with pytest.raises(SimulationError):
            table.insert(tabled_job(job_id=1, queue_id=1))

    def test_remove(self):
        table = JobTable(4)
        job = tabled_job(queue_id=3)
        table.insert(job)
        table.remove(job)
        assert table.get(3) is None
        assert len(table) == 0

    def test_remove_unknown_rejected(self):
        table = JobTable(4)
        with pytest.raises(SimulationError):
            table.remove(tabled_job())

    def test_entries_sorted_by_queue_id(self):
        table = JobTable(8)
        for queue_id in (5, 1, 3):
            table.insert(tabled_job(job_id=queue_id, queue_id=queue_id))
        assert [e.queue_id for e in table.entries()] == [1, 3, 5]


class TestEntriesCache:
    def test_repeated_calls_reuse_the_cached_view(self):
        table = JobTable(8)
        table.insert(tabled_job(job_id=0, queue_id=0))
        assert table.entries() is table.entries()

    def test_insert_invalidates_the_view(self):
        table = JobTable(8)
        table.insert(tabled_job(job_id=0, queue_id=4))
        first = table.entries()
        table.insert(tabled_job(job_id=1, queue_id=2))
        second = table.entries()
        assert first is not second
        assert [e.queue_id for e in second] == [2, 4]

    def test_remove_invalidates_the_view(self):
        table = JobTable(8)
        keep = tabled_job(job_id=0, queue_id=0)
        gone = tabled_job(job_id=1, queue_id=1)
        table.insert(keep)
        table.insert(gone)
        table.entries()
        table.remove(gone)
        assert [e.queue_id for e in table.entries()] == [0]


class TestStandingStartOrder:
    def test_jobs_by_start_orders_by_start_then_id(self):
        table = JobTable(8)
        late = tabled_job(job_id=0, queue_id=0)
        late.start_time = 300
        early = tabled_job(job_id=1, queue_id=1)
        early.start_time = 100
        tied = tabled_job(job_id=2, queue_id=2)
        tied.start_time = 100
        for job in (late, early, tied):
            table.insert(job)
        assert [j.job_id for j in table.jobs_by_start()] == [1, 2, 0]

    def test_matches_the_tick_sweep_sort_key(self):
        # The standing order must equal sorting live jobs by
        # (start_time or arrival, job_id) — the seed sweep's key.
        table = JobTable(16)
        jobs = []
        for job_id, start in enumerate((40, 10, 10, 0, 25)):
            job = tabled_job(job_id=job_id, queue_id=job_id)
            job.start_time = start
            table.insert(job)
            jobs.append(job)
        expected = sorted(jobs,
                          key=lambda j: (j.start_time or j.arrival, j.job_id))
        assert table.jobs_by_start() == expected

    def test_remove_keeps_the_standing_order(self):
        table = JobTable(8)
        jobs = []
        for job_id, start in enumerate((50, 20, 35)):
            job = tabled_job(job_id=job_id, queue_id=job_id)
            job.start_time = start
            table.insert(job)
            jobs.append(job)
        table.remove(jobs[2])
        assert [j.job_id for j in table.jobs_by_start()] == [1, 0]

    def test_snapshot_is_safe_to_mutate_during_iteration(self):
        table = JobTable(8)
        jobs = []
        for job_id in range(3):
            job = tabled_job(job_id=job_id, queue_id=job_id)
            job.start_time = job_id * 10
            table.insert(job)
            jobs.append(job)
        snapshot = table.jobs_by_start()
        for job in snapshot:
            table.remove(job)  # must not disturb the snapshot being walked
        assert snapshot == jobs
        assert table.jobs_by_start() == []


class TestWGList:
    def test_wg_list_tracks_outstanding_work(self):
        table = JobTable(4)
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=2),
                                    make_descriptor(name="b", num_wgs=3)])
        job.mark_enqueued(0, 0)
        entry = table.insert(job)
        wglist = entry.wg_list()
        assert [(e.kernel_name, e.wgs_remaining) for e in wglist] == [
            ("a", 2), ("b", 3)]

    def test_completed_kernels_leave_wg_list(self):
        table = JobTable(4)
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=1),
                                    make_descriptor(name="b", num_wgs=1)])
        job.mark_enqueued(0, 0)
        entry = table.insert(job)
        first = job.kernels[0]
        first.mark_active(0)
        first.note_wg_issued(0)
        first.note_wg_completed(1)
        assert [e.kernel_name for e in entry.wg_list()] == ["b"]
