"""Unit tests for the Job Table (Section 4.2), incl. the 4240-byte claim."""

import pytest

from repro.core.job_table import (ENTRY_BYTES, JobTable, job_table_bytes)
from repro.errors import SimulationError
from repro.harness.paper_expected import PAPER_JOB_TABLE_BYTES

from conftest import make_descriptor, make_job


def tabled_job(job_id=0, queue_id=None, num_wgs=4):
    job = make_job(job_id=job_id,
                   descriptors=[make_descriptor(num_wgs=num_wgs)])
    job.mark_enqueued(0, queue_id if queue_id is not None else job_id)
    return job


class TestMemoryFootprint:
    def test_matches_paper_for_128_queues(self):
        assert job_table_bytes(128) == PAPER_JOB_TABLE_BYTES == 4240

    def test_scales_linearly_with_queues(self):
        assert job_table_bytes(256) - job_table_bytes(128) == 128 * ENTRY_BYTES

    def test_instance_reports_provisioned_memory(self):
        assert JobTable(128).memory_bytes == 4240


class TestTableOperations:
    def test_insert_and_get(self):
        table = JobTable(4)
        job = tabled_job(queue_id=2)
        entry = table.insert(job)
        assert table.get(2) is entry
        assert entry.deadline == job.deadline
        assert entry.state == "init"

    def test_insert_requires_queue_binding(self):
        table = JobTable(4)
        with pytest.raises(SimulationError):
            table.insert(make_job())

    def test_duplicate_queue_rejected(self):
        table = JobTable(4)
        table.insert(tabled_job(job_id=0, queue_id=1))
        with pytest.raises(SimulationError):
            table.insert(tabled_job(job_id=1, queue_id=1))

    def test_capacity_enforced(self):
        table = JobTable(1)
        table.insert(tabled_job(job_id=0, queue_id=0))
        with pytest.raises(SimulationError):
            table.insert(tabled_job(job_id=1, queue_id=1))

    def test_remove(self):
        table = JobTable(4)
        job = tabled_job(queue_id=3)
        table.insert(job)
        table.remove(job)
        assert table.get(3) is None
        assert len(table) == 0

    def test_remove_unknown_rejected(self):
        table = JobTable(4)
        with pytest.raises(SimulationError):
            table.remove(tabled_job())

    def test_entries_sorted_by_queue_id(self):
        table = JobTable(8)
        for queue_id in (5, 1, 3):
            table.insert(tabled_job(job_id=queue_id, queue_id=queue_id))
        assert [e.queue_id for e in table.entries()] == [1, 3, 5]


class TestWGList:
    def test_wg_list_tracks_outstanding_work(self):
        table = JobTable(4)
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=2),
                                    make_descriptor(name="b", num_wgs=3)])
        job.mark_enqueued(0, 0)
        entry = table.insert(job)
        wglist = entry.wg_list()
        assert [(e.kernel_name, e.wgs_remaining) for e in wglist] == [
            ("a", 2), ("b", 3)]

    def test_completed_kernels_leave_wg_list(self):
        table = JobTable(4)
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=1),
                                    make_descriptor(name="b", num_wgs=1)])
        job.mark_enqueued(0, 0)
        entry = table.insert(job)
        first = job.kernels[0]
        first.mark_active(0)
        first.note_wg_issued(0)
        first.note_wg_completed(1)
        assert [e.kernel_name for e in entry.wg_list()] == ["b"]
