"""Unit and property tests for percentile/geomean helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.percentile import geomean, p99, percentile, safe_ratio


class TestPercentile:
    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0

    def test_median_of_two(self):
        assert percentile([10.0, 20.0], 50) == 15.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_p99_shorthand(self):
        values = list(range(1, 101))
        assert p99(values) == percentile(values, 99)

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_matches_numpy(self, values, q):
        ours = percentile(values, q)
        theirs = float(np.percentile(values, q))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-6)

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=100))
    def test_bounded_by_extremes(self, values):
        for q in (0, 25, 50, 75, 99, 100):
            result = percentile(values, q)
            assert min(values) <= result <= max(values)


class TestGeomean:
    def test_identity_for_equal_values(self):
        assert geomean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_non_positive_rejected_without_floor(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_floor_substitutes(self):
        assert geomean([1.0, 0.0], floor=1.0) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6),
                    min_size=1, max_size=50))
    def test_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) * 0.999 <= result <= max(values) * 1.001

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e3),
                    min_size=1, max_size=30),
           st.floats(min_value=1e-2, max_value=1e2))
    def test_scaling_homogeneity(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(10, 4) == 2.5

    def test_zero_denominator_returns_default(self):
        assert safe_ratio(10, 0) == 0.0
        assert safe_ratio(10, 0, default=-1.0) == -1.0
