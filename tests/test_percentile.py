"""Unit and property tests for percentile/geomean helpers."""

import random

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.percentile import (P2Estimator, ReservoirEstimator,
                                      geomean, p99, percentile, safe_ratio)


class TestPercentile:
    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0

    def test_median_of_two(self):
        assert percentile([10.0, 20.0], 50) == 15.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_p99_shorthand(self):
        values = list(range(1, 101))
        assert p99(values) == percentile(values, 99)

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_matches_numpy(self, values, q):
        ours = percentile(values, q)
        theirs = float(np.percentile(values, q))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-6)

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=100))
    def test_bounded_by_extremes(self, values):
        for q in (0, 25, 50, 75, 99, 100):
            result = percentile(values, q)
            assert min(values) <= result <= max(values)


class TestReservoirEstimator:
    def test_empty_contract(self):
        estimator = ReservoirEstimator()
        with pytest.raises(ValueError):
            estimator.percentile(50)
        assert estimator.query(50) is None

    def test_single_observation_returned_for_every_q(self):
        estimator = ReservoirEstimator()
        estimator.add(7.0)
        for q in (0, 1, 50, 99, 100):
            assert estimator.percentile(q) == 7.0

    def test_q_out_of_range_rejected(self):
        estimator = ReservoirEstimator()
        estimator.add(1.0)
        with pytest.raises(ValueError):
            estimator.percentile(101)
        with pytest.raises(ValueError):
            estimator.query(-1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReservoirEstimator(capacity=0)

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=64),
           st.floats(min_value=0, max_value=100))
    def test_exact_while_within_capacity(self, values, q):
        estimator = ReservoirEstimator(capacity=64)
        for value in values:
            estimator.add(value)
        assert estimator.is_exact
        assert estimator.percentile(q) == percentile(values, q)

    def test_sampling_beyond_capacity(self):
        estimator = ReservoirEstimator(capacity=32, seed=3)
        for value in range(1000):
            estimator.add(float(value))
        assert not estimator.is_exact
        assert estimator.count == 1000
        assert len(estimator.sample()) == 32
        assert 0 <= estimator.percentile(50) <= 999

    def test_deterministic_for_same_seed(self):
        def run(seed):
            estimator = ReservoirEstimator(capacity=8, seed=seed)
            for value in range(200):
                estimator.add(float(value))
            return estimator.sample()
        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_large_stream_estimate_is_close(self):
        rng = random.Random(11)
        estimator = ReservoirEstimator(capacity=2048, seed=0)
        values = [rng.uniform(0.0, 1000.0) for _ in range(20000)]
        for value in values:
            estimator.add(value)
        # ~3 sigma of the order-statistic sampling error at n=2048.
        for q, tolerance in ((50, 35.0), (99, 10.0)):
            exact = percentile(values, q)
            assert estimator.percentile(q) == pytest.approx(exact,
                                                            abs=tolerance)


class TestP2Estimator:
    def test_empty_contract(self):
        estimator = P2Estimator(99)
        with pytest.raises(ValueError):
            estimator.value()
        assert estimator.query() is None

    def test_single_observation_returned(self):
        estimator = P2Estimator(99)
        estimator.add(5.5)
        assert estimator.value() == 5.5

    def test_q_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            P2Estimator(101)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=5),
           st.floats(min_value=0, max_value=100))
    def test_exact_for_first_five(self, values, q):
        estimator = P2Estimator(q)
        for value in values:
            estimator.add(value)
        assert estimator.value() == percentile(values, q)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=6, max_size=300))
    def test_estimate_bounded_by_extremes(self, values):
        for q in (50.0, 99.0):
            estimator = P2Estimator(q)
            for value in values:
                estimator.add(value)
            assert min(values) <= estimator.value() <= max(values)

    def test_close_to_exact_on_smooth_distributions(self):
        rng = random.Random(7)
        values = [rng.gauss(100.0, 15.0) for _ in range(5000)]
        for q in (50.0, 90.0, 99.0):
            estimator = P2Estimator(q)
            for value in values:
                estimator.add(value)
            exact = percentile(values, q)
            assert estimator.value() == pytest.approx(exact, rel=0.05)


class TestGeomean:
    def test_identity_for_equal_values(self):
        assert geomean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_non_positive_rejected_without_floor(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_floor_substitutes(self):
        assert geomean([1.0, 0.0], floor=1.0) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6),
                    min_size=1, max_size=50))
    def test_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) * 0.999 <= result <= max(values) * 1.001

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e3),
                    min_size=1, max_size=30),
           st.floats(min_value=1e-2, max_value=1e2))
    def test_scaling_homogeneity(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(10, 4) == 2.5

    def test_zero_denominator_returns_default(self):
        assert safe_ratio(10, 0) == 0.0
        assert safe_ratio(10, 0, default=-1.0) == -1.0
