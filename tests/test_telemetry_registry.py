"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (Counter, Gauge, Histogram, MetricsRegistry)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events seen.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total")
        first.inc()
        second = registry.counter("hits_total")
        assert first is second
        assert second.value == 1

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", kind="a").inc()
        registry.counter("hits_total", kind="b").inc(2)
        assert registry.value("hits_total", kind="a") == 1
        assert registry.value("hits_total", kind="b") == 2


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(7.5)
        gauge.inc(-2.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("latency_ms",
                                           buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        cumulative = dict(hist.cumulative_counts())
        assert cumulative[1.0] == 1
        assert cumulative[10.0] == 2
        assert cumulative[100.0] == 3
        assert cumulative[float("inf")] == 4
        assert hist.count == 4
        assert hist.sum == pytest.approx(555.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("x", buckets=(10.0, 1.0))


class TestRegistry:
    def test_prefix_applies_to_names(self):
        registry = MetricsRegistry(prefix="repro")
        counter = registry.counter("jobs_total")
        assert counter.name == "repro_jobs_total"

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("bad name")
        with pytest.raises(TelemetryError):
            registry.counter("ok_name", **{"bad-label": "x"})

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TelemetryError):
            registry.gauge("thing")

    def test_prometheus_text_format(self):
        registry = MetricsRegistry(prefix="repro")
        registry.counter("jobs_total", "Jobs seen.").inc(3)
        registry.gauge("ratio").set(0.5)
        hist = registry.histogram("latency_ms", "Latency.", buckets=(1.0,))
        hist.observe(0.4)
        text = registry.to_prometheus_text()
        assert "# HELP repro_jobs_total Jobs seen." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text
        assert "repro_ratio 0.5" in text
        assert 'repro_latency_ms_bucket{le="1"} 1' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 1' in text
        assert "repro_latency_ms_count 1" in text

    def test_prometheus_labels_rendered(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", kind="read").inc()
        assert 'ops_total{kind="read"} 1' in registry.to_prometheus_text()

    def test_json_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(2)
        registry.histogram("lat_ms", buckets=(1.0,)).observe(0.2)
        records = {record["name"]: record for record in registry.to_json()}
        assert records["jobs_total"]["value"] == 2
        assert records["jobs_total"]["kind"] == "counter"
        assert records["lat_ms"]["count"] == 1
        assert records["lat_ms"]["buckets"][0] == {"le": 1.0, "count": 1}

    def test_value_lookup_missing_returns_none(self):
        assert MetricsRegistry().value("nope") is None
