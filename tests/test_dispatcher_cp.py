"""Integration-grade unit tests for the dispatcher + command processor."""

import dataclasses

import pytest

from repro.config import GPUConfig, SimConfig
from repro.schedulers.rr import RoundRobinScheduler
from repro.sim.device import GPUSystem
from repro.sim.job import JobState
from repro.units import MS, US

from conftest import make_descriptor, make_job


def run_system(jobs, policy=None, config=None):
    system = GPUSystem(policy or RoundRobinScheduler(),
                       config or SimConfig())
    system.submit_workload(jobs)
    return system, system.run()


class TestKernelChaining:
    def test_single_kernel_latency_includes_cp_overheads(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1, wg_work=10 * US)])
        _, metrics = run_system([job])
        # inspection (2us) + activation (2us) + 10us work.
        assert metrics.outcomes[0].latency == 14 * US

    def test_dependent_kernels_run_sequentially(self):
        descs = [make_descriptor(name="a", num_wgs=1, wg_work=10 * US),
                 make_descriptor(name="b", num_wgs=1, wg_work=10 * US)]
        job = make_job(descriptors=descs)
        _, metrics = run_system([job])
        # Two kernels, each preceded by a 2us activation; plus inspection.
        assert metrics.outcomes[0].latency == 2 * US + 2 * (2 + 10) * US

    def test_independent_jobs_overlap(self):
        jobs = [make_job(job_id=i,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=100 * US)])
                for i in range(2)]
        _, metrics = run_system(jobs)
        latencies = [o.latency for o in metrics.outcomes]
        # Two 1-WG kernels on an 8-CU device run at full rate concurrently.
        assert all(lat == 104 * US for lat in latencies)


class TestInspectionBank:
    def test_fifth_simultaneous_arrival_waits_for_a_parser_slot(self):
        jobs = [make_job(job_id=i,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=10 * US)])
                for i in range(5)]
        _, metrics = run_system(jobs)
        latencies = sorted(o.latency for o in metrics.outcomes)
        assert latencies[:4] == [14 * US] * 4
        assert latencies[4] == 16 * US  # one extra 2us parser wait


class TestQueueBacklog:
    def test_jobs_beyond_queue_count_wait_and_complete(self):
        gpu = dataclasses.replace(GPUConfig(), num_queues=2)
        config = SimConfig(gpu=gpu)
        jobs = [make_job(job_id=i, deadline=10 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=50 * US)])
                for i in range(5)]
        _, metrics = run_system(jobs, config=config)
        assert all(o.completion is not None for o in metrics.outcomes)


class TestCancelJob:
    def test_cancel_running_job_frees_device(self):
        long_job = make_job(job_id=0, deadline=10 * MS, descriptors=[
            make_descriptor(name="long", num_wgs=8, wg_work=MS)])
        short_job = make_job(
            job_id=1, arrival=100 * US, deadline=10 * MS,
            descriptors=[make_descriptor(name="short", num_wgs=1,
                                         wg_work=10 * US)])
        system = GPUSystem(RoundRobinScheduler(), SimConfig())
        system.submit_workload([long_job, short_job])
        system.sim.schedule_at(50 * US, system.cp.cancel_job, long_job)
        metrics = system.run()
        assert long_job.state is JobState.REJECTED
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert outcome[0].accepted is False
        assert outcome[0].completion is None
        assert outcome[1].met_deadline

    def test_cancel_is_idempotent_on_done_jobs(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=10 * US)])
        system = GPUSystem(RoundRobinScheduler(), SimConfig())
        system.submit_workload([job])
        metrics = system.run()
        system.cp.cancel_job(job)  # job completed long ago: no-op
        assert metrics.outcomes[0].completion is not None


class TestDiagnostics:
    def test_wg_issue_counter(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=5, wg_work=US)])
        system, _ = run_system([job])
        assert system.dispatcher.wgs_issued == 5

    def test_profiler_sees_completions(self):
        job = make_job(descriptors=[make_descriptor(name="kx", num_wgs=5,
                                                    wg_work=US)])
        system, _ = run_system([job])
        assert system.profiler.total_completed("kx") == 5
