"""Unit tests for the host command channel (CPU-side substrate)."""

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.schedulers.cpu_side.base import HostSchedulerPolicy
from repro.sim.device import GPUSystem
from repro.sim.job import JobState
from repro.units import MS, US

from conftest import make_descriptor, make_job

LATENCY = 4 * US  # OverheadConfig.host_device_latency


class ManualHostPolicy(HostSchedulerPolicy):
    """Host policy driven explicitly by tests."""

    name = "MANUAL"

    def __init__(self) -> None:
        super().__init__()
        self.arrived = []
        self.kernel_notices = []
        self.job_notices = []

    def host_on_job_arrival(self, job):
        self.arrived.append((self.ctx.now, job))

    def host_on_kernel_complete(self, kernel):
        self.kernel_notices.append((self.ctx.now, kernel))

    def host_on_job_complete(self, job):
        self.job_notices.append((self.ctx.now, job))


def host_system(jobs):
    policy = ManualHostPolicy()
    system = GPUSystem(policy, SimConfig())
    system.submit_workload(jobs)
    return policy, system


class TestSubmission:
    def test_submit_lands_after_one_crossing(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=10 * US)])
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.sim.run_until(LATENCY - 1)
        assert job.state is JobState.INIT
        metrics = system.run()
        # 4us crossing + 2us activation + 10us work (inspection skipped).
        assert metrics.outcomes[0].latency == 16 * US

    def test_submit_validates_state_and_release(self):
        job = make_job()
        policy, system = host_system([job])
        with pytest.raises(SimulationError):
            system.host.submit_job(job, release=0)
        with pytest.raises(SimulationError):
            system.host.submit_job(job, release=5)

    def test_release_marker_limits_chain(self):
        descs = [make_descriptor(name=f"k{i}", num_wgs=1, wg_work=10 * US)
                 for i in range(3)]
        job = make_job(descriptors=descs, deadline=100 * MS)
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.sim.run_until(MS)
        # Only kernel 0 ran; the chain paused awaiting host releases.
        assert job.kernels[0].is_done
        assert not job.kernels[1].is_done
        system.host.release_all_kernels(job)
        system.run()
        assert job.state is JobState.COMPLETED


class TestNotifications:
    def test_kernel_completion_arrives_latency_late(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=10 * US)])
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.run()
        device_done = job.kernels[0].finish_time
        host_heard = policy.kernel_notices[0][0]
        assert host_heard == device_done + LATENCY

    def test_job_completion_notification(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=10 * US)])
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.run()
        assert policy.job_notices[0][0] == job.completion_time + LATENCY


class TestPriorityAndCancel:
    def test_priority_write_takes_effect_late(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=100 * US)])
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.host.set_priority(job, 7.5)
        system.sim.run_until(LATENCY - 1)
        assert job.priority == 0.0
        system.sim.run_until(LATENCY)
        assert job.priority == 7.5
        system.run()

    def test_host_reject_never_touches_device(self):
        job = make_job()
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.reject_job(job)
        metrics = system.run()
        assert job.state is JobState.REJECTED
        assert metrics.outcomes[0].wgs_executed == 0

    def test_host_cancel_running_job(self):
        job = make_job(deadline=100 * MS, descriptors=[
            make_descriptor(num_wgs=1, wg_work=MS)])
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.sim.run_until(100 * US)
        system.host.cancel_job(job)
        system.run()
        assert job.state is JobState.REJECTED

    def test_commands_counted(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=10 * US)])
        policy, system = host_system([job])
        system.sim.run_until(0)
        system.host.submit_job(job, release=1)
        system.host.set_priority(job, 1.0)
        system.run()
        assert system.host.commands_sent == 2
