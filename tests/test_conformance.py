"""Cross-scheduler conformance: every registered policy, every scenario.

One parametrized sweep over the full registry x scenario battery with the
invariant checker attached, plus the per-policy contracts.  This is the
suite a perf refactor must keep green before its numbers are trusted.
"""

import pytest

from repro.schedulers.registry import ALL_SCHEDULERS
from repro.validation import (POLICY_CONTRACTS, SCENARIOS,
                              check_postconditions, run_policy_contracts,
                              run_scenario)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_scenario_postconditions(scheduler, scenario):
    outcome = run_scenario(scheduler, scenario)
    assert check_postconditions(outcome) == []
    # The checker actually ran (the scenario is not vacuously clean).
    assert outcome.checker.total_checks > 0
    assert outcome.checker.violations == []


@pytest.mark.parametrize("scheduler", sorted(POLICY_CONTRACTS))
def test_policy_contracts(scheduler):
    results = run_policy_contracts(scheduler)
    assert results, f"{scheduler} has contracts registered but none ran"
    for scenario, failures in results.items():
        assert failures == [], f"{scheduler}/{scenario}: {failures}"


def test_every_registered_scheduler_is_covered():
    """The registry cannot quietly grow past the conformance sweep."""
    # Parametrization above iterates ALL_SCHEDULERS directly, so this
    # guards the inverse: contracts must name real schedulers only.
    unknown = set(POLICY_CONTRACTS) - set(ALL_SCHEDULERS)
    assert not unknown, f"contracts for unregistered schedulers: {unknown}"


def test_unknown_scenario_is_a_clear_error():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="unknown scenario"):
        run_scenario("LAX", "nonsense")


def test_scenarios_are_deterministic():
    """Same scheduler + scenario twice -> identical outcome metrics."""
    first = run_scenario("LAX", "saturation")
    second = run_scenario("LAX", "saturation")
    pairs = zip(first.metrics.outcomes, second.metrics.outcomes)
    for a, b in pairs:
        assert (a.job_id, a.completion, a.accepted) == \
               (b.job_id, b.completion, b.accepted)
