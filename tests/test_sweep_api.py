"""The sweep API surface: SweepSpec, RunOptions, deprecated wrappers."""

import pytest

import repro
import repro.harness as harness
from repro.errors import HarnessError
from repro.harness import RunOptions, Runner, SweepSpec, run_cell
from repro.harness.replication import (compare_sweep, compare_with_confidence,
                                       replicate_cell, replicate_sweep)
from repro.harness.spec import single_cell_sweep
from repro.harness.experiment import ExperimentSpec


class TestSweepSpec:
    def test_cells_deterministic_order(self):
        sweep = SweepSpec(benchmarks=("IPV6", "LSTM"),
                          schedulers=("RR", "LAX"),
                          rate_levels=("high", "low"), seeds=(1, 2),
                          num_jobs=8)
        cells = sweep.cells()
        assert len(cells) == len(sweep) == 16
        # Benchmark-major, then scheduler, rate, seed.
        assert cells[0] == ExperimentSpec(benchmark="IPV6", scheduler="RR",
                                          rate_level="high", num_jobs=8,
                                          seed=1)
        assert cells[1].seed == 2
        assert cells[2].rate_level == "low"
        assert cells[4].scheduler == "LAX"
        assert cells[8].benchmark == "LSTM"
        assert cells == sweep.cells()  # stable across calls

    def test_accepts_lists_and_strings(self):
        sweep = SweepSpec(benchmarks="IPV6", schedulers=["RR"],
                          seeds=[3], num_jobs=4)
        assert sweep.benchmarks == ("IPV6",)
        assert sweep.schedulers == ("RR",)
        assert sweep.seeds == (3,)

    def test_rejects_unknown_names(self):
        with pytest.raises(Exception):
            SweepSpec(benchmarks=("NOPE",), schedulers=("RR",))
        with pytest.raises(HarnessError):
            SweepSpec(benchmarks=("IPV6",), schedulers=("FIFO",))
        with pytest.raises(HarnessError):
            SweepSpec(benchmarks=("IPV6",), schedulers=("RR",),
                      rate_levels=("turbo",))

    def test_rejects_empty_axes_and_bad_jobs(self):
        with pytest.raises(HarnessError):
            SweepSpec(benchmarks=(), schedulers=("RR",))
        with pytest.raises(HarnessError):
            SweepSpec(benchmarks=("IPV6",), schedulers=("RR",), seeds=())
        with pytest.raises(HarnessError):
            SweepSpec(benchmarks=("IPV6",), schedulers=("RR",), num_jobs=0)

    def test_scheduler_args_propagate_to_cells(self):
        sweep = SweepSpec(benchmarks=("IPV6",), schedulers=("LAX",),
                          num_jobs=8,
                          scheduler_args=(("enable_admission", False),))
        assert sweep.cells()[0].scheduler_args == \
            (("enable_admission", False),)

    def test_describe_counts(self):
        sweep = SweepSpec(benchmarks=("IPV6",), schedulers=("RR", "LAX"),
                          seeds=(1, 2, 3), num_jobs=8)
        assert "6 cells" in sweep.describe()

    def test_single_cell_round_trip(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="LAX",
                              rate_level="low", num_jobs=8, seed=7)
        assert single_cell_sweep(spec).cells() == [spec]


class TestRunOptions:
    def test_defaults_are_unobserved(self):
        options = RunOptions()
        assert not options.has_live_sinks
        assert options.build_validator() is None

    def test_validate_builds_fresh_checkers(self):
        options = RunOptions(validate=True)
        first = options.build_validator()
        second = options.build_validator()
        assert first is not None
        assert first is not second
        assert not options.has_live_sinks  # flag alone is pool-safe

    def test_explicit_validator_wins(self):
        sentinel = object()
        options = RunOptions(validator=sentinel, validate=True)
        assert options.build_validator() is sentinel
        assert options.has_live_sinks

    def test_run_cell_accepts_options(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", num_jobs=8)
        result = run_cell(spec, options=RunOptions())
        assert result.metrics.num_jobs == 8

    def test_run_cell_rejects_mixed_forms(self):
        spec = ExperimentSpec(benchmark="IPV6", scheduler="RR", num_jobs=8)
        from repro.config import SimConfig
        with pytest.raises(HarnessError):
            run_cell(spec, config=SimConfig(), options=RunOptions())


class TestPublicSurface:
    def test_harness_reexports(self):
        for name in ("SweepSpec", "RunOptions", "Runner", "run_cell",
                     "CellFailure", "SweepOutcome", "ResultCache",
                     "replicate_sweep", "compare_sweep"):
            assert name in harness.__all__
            assert hasattr(harness, name)

    def test_package_reexports(self):
        assert repro.SweepSpec is SweepSpec
        assert repro.RunOptions is RunOptions
        assert repro.Runner is Runner
        for name in ("SweepSpec", "RunOptions", "Runner"):
            assert name in repro.__all__


class TestRemovedWrappers:
    """The PR-3 deprecation cycle is complete: the string-positional
    wrappers stay importable but raise with a pointer to the sweep API.
    """

    def test_replicate_cell_raises_with_pointer(self):
        with pytest.raises(HarnessError, match="replicate_sweep"):
            replicate_cell("IPV6", "LAX", num_jobs=8, seeds=(1, 2))

    def test_compare_with_confidence_raises_with_pointer(self):
        with pytest.raises(HarnessError, match="compare_sweep"):
            compare_with_confidence("IPV6", "LAX", "RR",
                                    num_jobs=8, seeds=(1, 2))

    def test_wrappers_raise_even_with_no_arguments(self):
        with pytest.raises(HarnessError):
            replicate_cell()
        with pytest.raises(HarnessError):
            compare_with_confidence()


class TestCompareSweepShape:
    def test_needs_two_schedulers(self):
        sweep = SweepSpec(benchmarks=("IPV6",), schedulers=("LAX",),
                          num_jobs=8)
        with pytest.raises(HarnessError):
            compare_sweep(sweep)

    def test_needs_single_benchmark(self):
        sweep = SweepSpec(benchmarks=("IPV6", "LSTM"),
                          schedulers=("LAX", "RR"), num_jobs=8)
        with pytest.raises(HarnessError):
            compare_sweep(sweep)
