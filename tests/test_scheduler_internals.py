"""Micro-behaviour tests for scheduler internals not covered elsewhere."""

import math

import pytest

from repro.config import SimConfig
from repro.harness.formatting import format_bar_series, format_table
from repro.schedulers.hybrid import LaxityPremaHybridScheduler
from repro.schedulers.prema import PremaScheduler
from repro.schedulers.registry import make_scheduler
from repro.schedulers.rr import RoundRobinScheduler
from repro.sim.device import GPUSystem
from repro.units import MS, US

from conftest import make_descriptor, make_job


def bound_system(policy, jobs):
    system = GPUSystem(policy, SimConfig())
    system.submit_workload(jobs)
    return system


class TestRoundRobinPointer:
    def test_issue_order_rotates_from_pointer(self):
        policy = RoundRobinScheduler()
        system = bound_system(policy, [
            make_job(job_id=i, deadline=100 * MS,
                     descriptors=[make_descriptor(num_wgs=1)])
            for i in range(3)])
        system.sim.run_until(10 * US)
        kernels = [job.kernels[0]
                   for job in system.pool.live_jobs() if job.kernels]
        policy._pointer = 2
        if len(kernels) == 3:
            ordered = policy.issue_order(kernels)
            assert [k.job.queue_id for k in ordered][0] == 2
        system.sim.run()

    def test_pointer_advances_past_served(self):
        policy = RoundRobinScheduler()
        system = bound_system(policy, [
            make_job(job_id=i, deadline=100 * MS,
                     descriptors=[make_descriptor(num_wgs=1, wg_work=50 * US)])
            for i in range(4)])
        system.sim.run()
        # After a full run the pointer moved off its initial position.
        assert policy._pointer != 0


class TestPremaSelection:
    def test_selection_caps_at_device_capacity(self):
        policy = PremaScheduler()
        jobs = [make_job(job_id=i, deadline=100 * MS, descriptors=[
            make_descriptor(name="k", num_wgs=16, wg_work=500 * US)])
            for i in range(6)]
        system = bound_system(policy, jobs)
        system.sim.run_until(300 * US)  # past the first epoch
        # 32 full-rate slots / 16 WGs per job: at most ~3 jobs selected.
        assert 1 <= len(policy._selected) <= 3
        system.sim.run()

    def test_tokens_grow_with_wait(self):
        policy = PremaScheduler()
        jobs = [make_job(job_id=i, deadline=100 * MS, descriptors=[
            make_descriptor(name="k", num_wgs=32, wg_work=MS)])
            for i in range(3)]
        system = bound_system(policy, jobs)
        system.sim.run_until(600 * US)
        tokens = dict(policy._tokens)
        system.sim.run_until(900 * US)
        # Unfinished jobs' tokens are non-decreasing over time.
        for job_id, token in policy._tokens.items():
            if job_id in tokens:
                assert token >= tokens[job_id] - 1e-9
        system.sim.run()


class TestHybridInternals:
    def test_victims_sorted_laxity_richest_first(self):
        policy = make_scheduler("LAX-PREMA")
        loose = make_job(job_id=0, deadline=100 * MS, descriptors=[
            make_descriptor(name="a", num_wgs=8, wg_work=2 * MS)])
        tight = make_job(job_id=1, arrival=10 * US, deadline=5 * MS,
                         descriptors=[
            make_descriptor(name="b", num_wgs=8, wg_work=2 * MS)])
        urgent = make_job(job_id=2, arrival=20 * US, deadline=3 * MS,
                          descriptors=[
            make_descriptor(name="c", num_wgs=8, wg_work=MS)])
        system = bound_system(policy, [loose, tight, urgent])
        system.sim.run_until(200 * US)
        urgent_kernel = urgent.kernels[0]
        victims = policy._victims_by_laxity(urgent_kernel, system.sim.now)
        if len(victims) == 2:
            assert victims[0][0] >= victims[1][0]
            assert victims[0][1].job is loose
        system.sim.run()

    def test_preemption_counter_and_energy(self):
        policy = LaxityPremaHybridScheduler()
        hog = make_job(job_id=0, deadline=200 * MS, descriptors=[
            make_descriptor(name="hog", num_wgs=32, wg_work=5 * MS,
                            threads_per_wg=640, context=512 * 1024)])
        urgent = make_job(job_id=1, arrival=400 * US, deadline=2 * MS,
                          descriptors=[
            make_descriptor(name="urg", num_wgs=32, wg_work=300 * US,
                            threads_per_wg=640)])
        system = bound_system(policy, [hog, urgent])
        system.run()
        assert policy.preemption_events >= 1
        assert system.energy.preemption_joules > 0


class TestFormattingEdges:
    def test_stringify_large_and_small_floats(self):
        text = format_table(("v",), [(12345.6,), (0.1234,), (0,)])
        assert "12346" in text
        assert "0.1234" in text

    def test_bar_series_handles_zeroes(self):
        text = format_bar_series(["a", "b"], [0.0, 0.0])
        assert "a" in text and "b" in text

    def test_table_without_title(self):
        text = format_table(("x", "y"), [(1, 2)])
        assert text.splitlines()[0].startswith("x")
