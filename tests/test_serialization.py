"""Tests for workload JSON serialisation."""

import json

import pytest

from repro.config import SimConfig
from repro.errors import WorkloadError
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem, run_workload
from repro.sim.job import Job
from repro.units import MS, US
from repro.workloads.registry import build_workload
from repro.workloads.serialization import (FORMAT_TAG, load_workload,
                                           save_workload,
                                           workload_from_dict,
                                           workload_to_dict)

from conftest import make_descriptor, make_job


class TestRoundTrip:
    def test_simple_round_trip(self):
        jobs = [make_job(job_id=i, arrival=i * US, deadline=MS,
                         descriptors=[make_descriptor(name="k", num_wgs=3)])
                for i in range(3)]
        rebuilt = workload_from_dict(workload_to_dict(jobs))
        assert len(rebuilt) == 3
        for original, copy in zip(jobs, rebuilt):
            assert copy.job_id == original.job_id
            assert copy.arrival == original.arrival
            assert copy.deadline == original.deadline
            assert copy.total_wgs == original.total_wgs

    def test_preserves_deadline_none(self):
        jobs = [make_job(deadline=None)]
        rebuilt = workload_from_dict(workload_to_dict(jobs))
        assert rebuilt[0].deadline is None

    def test_preserves_dag_dependencies(self):
        descs = [make_descriptor(name=f"k{i}", num_wgs=1) for i in range(4)]
        job = Job(0, "DAG", descs, 0, MS,
                  dependencies={1: (0,), 2: (0,), 3: (1, 2)})
        rebuilt = workload_from_dict(workload_to_dict([job]))[0]
        assert rebuilt.kernel_dependencies(3) == (1, 2)
        assert rebuilt.is_dag

    def test_preserves_tags_and_priority(self):
        job = make_job(tag="lstm128:seq=9")
        job.user_priority = 3
        rebuilt = workload_from_dict(workload_to_dict([job]))[0]
        assert rebuilt.tag == "lstm128:seq=9"
        assert rebuilt.user_priority == 3

    def test_paper_workload_round_trips_and_replays(self, tmp_path):
        config = SimConfig()
        jobs = build_workload("STEM", "high", num_jobs=16, seed=1,
                              gpu=config.gpu)
        path = tmp_path / "stem.json"
        assert save_workload(jobs, str(path)) == 16
        replayed = load_workload(str(path))
        original = run_workload(make_scheduler("LAX"),
                                build_workload("STEM", "high", num_jobs=16,
                                               seed=1, gpu=config.gpu))
        from_file = run_workload(make_scheduler("LAX"), replayed)
        assert (original.jobs_meeting_deadline
                == from_file.jobs_meeting_deadline)
        assert ([o.completion for o in original.outcomes]
                == [o.completion for o in from_file.outcomes])

    def test_rnn_workload_round_trips(self, tmp_path):
        config = SimConfig()
        jobs = build_workload("LSTM", "low", num_jobs=4, seed=2,
                              gpu=config.gpu)
        path = tmp_path / "lstm.json"
        save_workload(jobs, str(path))
        rebuilt = load_workload(str(path))
        assert [j.num_kernels for j in rebuilt] == \
            [j.num_kernels for j in jobs]


class TestValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            workload_to_dict([])

    def test_format_tag_checked(self):
        with pytest.raises(WorkloadError):
            workload_from_dict({"format": "v0", "jobs": []})

    def test_unknown_kernel_reference_rejected(self):
        data = {"format": FORMAT_TAG, "kernels": {},
                "jobs": [{"job_id": 0, "benchmark": "X", "arrival": 0,
                          "deadline": 1000, "kernels": ["ghost"]}]}
        with pytest.raises(WorkloadError):
            workload_from_dict(data)

    def test_no_jobs_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_dict({"format": FORMAT_TAG, "kernels": {},
                                "jobs": []})

    def test_conflicting_kernel_shapes_rejected(self):
        a = make_job(job_id=0, descriptors=[
            make_descriptor(name="k", num_wgs=2)])
        b = make_job(job_id=1, descriptors=[
            make_descriptor(name="k", num_wgs=4)])
        with pytest.raises(WorkloadError):
            workload_to_dict([a, b])

    def test_file_is_valid_json(self, tmp_path):
        jobs = [make_job()]
        path = tmp_path / "w.json"
        save_workload(jobs, str(path))
        data = json.loads(path.read_text())
        assert data["format"] == FORMAT_TAG
