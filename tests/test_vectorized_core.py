"""Unit + differential tests for the vectorized engine core (SoA mode).

``vectorized_mode`` switches three carriers at once (``laxity``, the
CU, the WG dispatcher) onto struct-of-arrays hot state; the whole-flag
cross product lives in ``test_modes_matrix.py``.  This module covers
the pieces individually:

* **differential mini-cells** — fleet/LAX with WG tracing, the hybrid
  under a contended stream, SRF's priority-rewriting tick and the
  host-driven LAX-SW priority path all bit-identical across modes;
* **bucketed-order plumbing** — the standing issue order actually
  engages under the flag, stays unbuilt without it, and the
  invalidation counters move when priorities are rewritten;
* **ResidentArrays engagement** — ``_VEC_MIN_RESIDENTS`` forced low so
  the per-CU SoA path runs even on a mini cell, and stays identical;
* **mode snapshot/apply** — the picklable state workers re-apply, round
  trips and ignores unknown keys;
* **assert_equivalent** — the structured A/B checkpoint the benches
  serialise: exactness, tolerance consumption, and failure paths.
"""

from __future__ import annotations

import dataclasses
import math
import pickle

import pytest

from repro.config import SimConfig
from repro.core import laxity
from repro.schedulers.registry import make_scheduler
from repro.sim import modes
from repro.sim.compute_unit import ComputeUnit
from repro.sim.device import GPUSystem
from repro.sim.dispatcher import WGDispatcher
from repro.sim.modes import vectorized_mode
from repro.sim.trace import TraceRecorder
from repro.validation import (EquivalenceError, EquivalenceLog,
                              assert_equivalent)
from repro.workloads.fleet import (build_fleet_jobs, fleet_config,
                                   fleet_warm_rates)
from repro.workloads.streaming import SUSTAINED_RATES, sustained_source

from repro.core.calibration import warm_table

RATE = SUSTAINED_RATES["high"]


@pytest.fixture(autouse=True)
def _engage_small_cells(monkeypatch):
    """Force the SoA paths on below the population gates.

    The mini cells here sit under ``_VEC_MIN_JOBS`` / ``_VEC_MIN_ACTIVE``
    (the cost-model gates that keep small populations on the scalar fast
    path), so without this the differentials would compare scalar against
    scalar and assert nothing."""
    monkeypatch.setattr("repro.schedulers.lax._VEC_MIN_JOBS", 1)
    monkeypatch.setattr("repro.sim.dispatcher._VEC_MIN_ACTIVE", 1)


def _traced_fleet_run(vectorized, num_jobs=96):
    """A scaled-down fleet cell with full WG tracing."""
    config = fleet_config()
    jobs = build_fleet_jobs(num_jobs=num_jobs, seed=3, gpu=config.gpu)
    with vectorized_mode(vectorized):
        trace = TraceRecorder(wg_events=True)
        system = GPUSystem(make_scheduler("LAX"), config, trace=trace)
        warm_table(system.profiler, fleet_warm_rates(config.gpu))
        system.submit_workload(jobs)
        metrics = system.run()
    admission = system.policy.admission
    return (dataclasses.asdict(metrics), trace.events,
            (admission.accepted, admission.rejected,
             admission.fast_accepted, admission.late_rejected),
            system.sim.events_fired, system.sim.now, system)


def _streamed_run(scheduler, vectorized, num_jobs=80):
    with vectorized_mode(vectorized):
        trace = TraceRecorder(wg_events=True)
        system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                           trace=trace)
        system.submit_stream(sustained_source(RATE).jobs(),
                             max_jobs=num_jobs)
        metrics = system.run()
    return (dataclasses.asdict(metrics), trace.events,
            system.sim.events_fired, system.sim.now, system)


class TestVectorizedDifferential:
    def test_fleet_lax_bit_identical(self):
        vec = _traced_fleet_run(True)
        pr5 = _traced_fleet_run(False)
        assert vec[:5] == pr5[:5]

    def test_hybrid_stream_bit_identical(self):
        vec = _streamed_run("LAX-PREMA", True)
        pr5 = _streamed_run("LAX-PREMA", False)
        assert vec[:4] == pr5[:4]

    def test_srf_tick_bit_identical(self):
        """SRF rewrites priorities every tick — the eager invalidation
        path must keep the standing order honest."""
        vec = _streamed_run("SRF", True)
        pr5 = _streamed_run("SRF", False)
        assert vec[:4] == pr5[:4]

    def test_host_priority_path_bit_identical(self):
        """LAX-SW drives priorities through the host's register writes
        (``Host._do_set_priority``), the invalidation site the CP-side
        ticks never exercise."""
        vec = _streamed_run("LAX-SW", True)
        pr5 = _streamed_run("LAX-SW", False)
        assert vec[:4] == pr5[:4]

    def test_resident_arrays_engaged_identical(self, monkeypatch):
        """Force the per-CU ResidentArrays on at tiny residency."""
        monkeypatch.setattr("repro.sim.compute_unit._VEC_MIN_RESIDENTS", 1)
        vec = _traced_fleet_run(True, num_jobs=48)
        pr5 = _traced_fleet_run(False, num_jobs=48)
        assert vec[:5] == pr5[:5]

    def test_cold_table_volatile_types_bit_identical(self):
        """Regression: a cold profiling table keeps kernel types volatile
        (observations but no published rate), so every cache sync fires
        ``on_types_changed`` and marks rank-SoA slots stale.  The
        vectorized admission sum must sync the cache *before* snapshotting
        staleness — reading it first missed those invalidations and
        diverged from the scalar ``total_outstanding_time`` loop (caught
        on the LSTM hot-path cell, which starts cold; the fleet cells
        never see it because ``warm_table`` pre-publishes rates)."""
        from repro import build_workload, run_workload

        def digest(vectorized):
            jobs = build_workload("LSTM", rate_level="high", num_jobs=32,
                                  seed=1, gpu=SimConfig().gpu)
            with vectorized_mode(vectorized):
                metrics = run_workload(make_scheduler("LAX"), jobs)
            return [(o.job_id, o.accepted, o.completion, o.wgs_executed,
                     o.met_deadline) for o in metrics.outcomes]

        assert digest(True) == digest(False)


class TestBucketedOrder:
    def test_engages_only_under_flag(self):
        *_, vec_system = _traced_fleet_run(True, num_jobs=48)
        *_, pr5_system = _traced_fleet_run(False, num_jobs=48)
        assert vec_system.dispatcher.bucketed_pumps > 0
        assert vec_system.dispatcher.order_rebuilds > 0
        assert pr5_system.dispatcher.bucketed_pumps == 0
        assert pr5_system.dispatcher.order_rebuilds == 0

    def test_priority_ticks_invalidate(self):
        """The LAX tick rewrites priorities, so a run with ticks must
        have dropped the standing order at least once."""
        *_, system = _traced_fleet_run(True, num_jobs=48)
        assert system.dispatcher.order_invalidations > 0

    def test_population_gate_keeps_small_cells_scalar(self, monkeypatch):
        """At the default gates a 48-job cell never engages the bucketed
        pump — the cost model keeps small populations on the scalar
        path (both sides are bit-identical, so this is purely perf)."""
        monkeypatch.setattr("repro.schedulers.lax._VEC_MIN_JOBS", 64)
        monkeypatch.setattr("repro.sim.dispatcher._VEC_MIN_ACTIVE", 64)
        *_, system = _traced_fleet_run(True, num_jobs=48)
        assert system.dispatcher.bucketed_pumps == 0
        assert system.dispatcher.order_rebuilds == 0

    def test_invalidate_order_counts_only_real_drops(self):
        dispatcher = GPUSystem(make_scheduler("LAX"),
                               SimConfig()).dispatcher
        assert dispatcher.order_invalidations == 0
        dispatcher.invalidate_order()       # no cache: a no-op
        assert dispatcher.order_invalidations == 0
        dispatcher._order_buckets = {}
        dispatcher.invalidate_order()
        assert dispatcher._order_buckets is None
        assert dispatcher.order_invalidations == 1


class TestModeSnapshot:
    def test_round_trip(self):
        """Vectorized ships on by default; flip it off, snapshot, and
        re-apply — the applied state must reach all three carriers."""
        baseline = modes.snapshot()
        assert modes.get_vectorized() is True
        try:
            with vectorized_mode(False):
                saved = modes.snapshot()
            assert saved != baseline
            modes.apply(saved)
            assert modes.get_vectorized() is False
            assert laxity.VECTORIZED is False
            assert ComputeUnit.vectorized is False
            assert WGDispatcher.vectorized is False
        finally:
            modes.apply(baseline)
        assert modes.get_vectorized() is True

    def test_apply_ignores_unknown_keys(self):
        baseline = modes.snapshot()
        modes.apply({"NoSuchCarrier.flag": True, **baseline})
        assert modes.snapshot() == baseline

    def test_snapshot_is_picklable(self):
        state = pickle.loads(pickle.dumps(modes.snapshot()))
        assert state == modes.snapshot()


class TestAssertEquivalent:
    def test_exact_record(self):
        record = assert_equivalent({"a": [1, 2.0]}, {"a": [1, 2.0]},
                                   context="t")
        assert record.exact
        assert record.compared == 2
        assert record.max_rel_error == 0.0
        assert record.as_dict()["context"] == "t"

    def test_tolerance_consumed_is_recorded(self):
        record = assert_equivalent({"x": 100.0}, {"x": 100.0001},
                                   rel_tol=1e-4)
        assert not record.exact
        assert 0.0 < record.max_rel_error <= 1e-4
        assert record.worst_path == "x"

    def test_float_beyond_tolerance_raises_with_path(self):
        with pytest.raises(EquivalenceError) as err:
            assert_equivalent({"x": [1.0, 2.0]}, {"x": [1.0, 3.0]},
                              rel_tol=1e-6, context="run")
        assert "run:x[1]" in str(err.value)

    def test_non_float_leaves_never_use_tolerance(self):
        with pytest.raises(EquivalenceError):
            assert_equivalent(100, 101, rel_tol=0.5)

    def test_structural_mismatches_raise(self):
        with pytest.raises(EquivalenceError):
            assert_equivalent([1, 2], [1, 2, 3])
        with pytest.raises(EquivalenceError):
            assert_equivalent({"a": 1}, {"b": 1})

    def test_nan_matches_nan(self):
        assert assert_equivalent(math.nan, math.nan).exact

    def test_log_accumulates(self):
        log = EquivalenceLog()
        log.check(1, 1, context="ints")
        log.check(2.0, 2.0 + 1e-9, rel_tol=1e-6, context="floats")
        assert len(log.records) == 2
        assert not log.all_exact
        contexts = [entry["context"] for entry in log.as_json()]
        assert contexts == ["ints", "floats"]
