"""Tests for the optional memory-bandwidth contention model."""

import dataclasses

import pytest

from repro.config import EnergyConfig, GPUConfig, SimConfig
from repro.errors import ConfigError
from repro.schedulers.registry import make_scheduler
from repro.sim.compute_unit import ComputeUnit
from repro.sim.device import GPUSystem
from repro.sim.energy import EnergyMeter
from repro.sim.engine import Simulator
from repro.units import MS, US

from conftest import make_descriptor, make_job


def bw_gpu(bytes_per_ns: float) -> GPUConfig:
    return dataclasses.replace(GPUConfig(),
                               memory_bw_bytes_per_ns=bytes_per_ns)


def run_cu(gpu, descriptor, wg_count):
    sim = Simulator()
    completions = []
    cu = ComputeUnit(0, sim, gpu, EnergyMeter(EnergyConfig()),
                     lambda kernel, now: completions.append(now))
    job = make_job(descriptors=[descriptor])
    kernel = job.kernels[0]
    kernel.mark_active(0)
    for _ in range(wg_count):
        cu.start_wg(kernel)
    sim.run()
    return completions


class TestConfig:
    def test_disabled_by_default(self):
        assert GPUConfig().memory_bw_bytes_per_ns == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(memory_bw_bytes_per_ns=-1.0)

    def test_descriptor_traffic_validated(self):
        with pytest.raises(ConfigError):
            make_descriptor(num_wgs=1).__class__(
                name="x", num_wgs=1, threads_per_wg=64, wg_work=1000,
                bytes_per_wg=-1)


class TestThrottling:
    # One WG moving 64 kB over 10 us demands 6.4 B/ns at full rate.
    def _memory_kernel(self):
        return make_descriptor(num_wgs=4, wg_work=10 * US,
                               bytes_per_wg=64_000)

    def test_no_throttle_when_disabled(self):
        completions = run_cu(bw_gpu(0.0), self._memory_kernel(), 4)
        assert all(now == 10 * US for now in completions)

    def test_no_throttle_under_budget(self):
        # 8 CUs share 512 B/ns -> 64 B/ns per CU; 4 WGs demand 25.6 B/ns.
        completions = run_cu(bw_gpu(512.0), self._memory_kernel(), 4)
        assert all(now == 10 * US for now in completions)

    def test_throttles_over_budget(self):
        # 102.4 B/ns device -> 12.8 B/ns per CU; 4 WGs demand 25.6 B/ns:
        # everyone runs at half speed.
        completions = run_cu(bw_gpu(102.4), self._memory_kernel(), 4)
        assert all(now == 20 * US for now in completions)

    def test_compute_kernels_unaffected_by_cap(self):
        desc = make_descriptor(num_wgs=4, wg_work=10 * US, bytes_per_wg=0)
        completions = run_cu(bw_gpu(1.0), desc, 4)
        assert all(now == 10 * US for now in completions)

    def test_throttle_lifts_as_residents_finish(self):
        # Two staggered WGs over a tight budget: the survivor speeds up
        # once the first one finishes.
        gpu = bw_gpu(51.2)  # 6.4 B/ns per CU: one WG saturates it exactly
        sim = Simulator()
        completions = []
        cu = ComputeUnit(0, sim, gpu, EnergyMeter(EnergyConfig()),
                         lambda kernel, now: completions.append(now))
        desc = make_descriptor(num_wgs=2, wg_work=10 * US,
                               bytes_per_wg=64_000)
        job = make_job(descriptors=[desc])
        kernel = job.kernels[0]
        kernel.mark_active(0)
        cu.start_wg(kernel)
        sim.run_until(10 * US)  # first WG halfway (rate 0.5 after join)...
        cu.start_wg(kernel)
        sim.run()
        # WG1: 10us alone at rate 1... joined at 10us, then 2 WGs at
        # rate 0.5 each: WG1 done at 10us already.  WG2: 20us at 0.5 if
        # shared... WG1 completed exactly at its join: survivor alone.
        assert completions[0] == 10 * US
        assert completions[1] == 20 * US


class TestEndToEnd:
    def test_bandwidth_pressure_slows_full_runs(self):
        desc = make_descriptor(num_wgs=16, wg_work=100 * US,
                               bytes_per_wg=1024 * 1024)
        jobs_free = [make_job(descriptors=[desc], deadline=100 * MS)]
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload(jobs_free)
        unconstrained = system.run().outcomes[0].latency

        jobs_capped = [make_job(descriptors=[desc], deadline=100 * MS)]
        capped_config = SimConfig(gpu=bw_gpu(8.0))
        system = GPUSystem(make_scheduler("RR"), capped_config)
        system.submit_workload(jobs_capped)
        constrained = system.run().outcomes[0].latency
        assert constrained > unconstrained

    def test_lax_rates_absorb_bandwidth_contention(self):
        # LAX needs no special handling: its completion-rate counters
        # measure whatever throughput the bandwidth-throttled device
        # actually achieves, and admission adapts.
        desc = make_descriptor(name="mem", num_wgs=8, wg_work=200 * US,
                               bytes_per_wg=512 * 1024)
        jobs = [make_job(job_id=i, arrival=(i + 1) * 100 * US,
                         deadline=4 * MS, descriptors=[desc])
                for i in range(12)]
        config = SimConfig(gpu=bw_gpu(16.0))
        system = GPUSystem(make_scheduler("LAX"), config)
        system.submit_workload(jobs)
        metrics = system.run()
        # Under the cap the device cannot serve everyone; admission must
        # shed load rather than let everything miss.
        assert metrics.jobs_meeting_deadline > 0
        assert metrics.jobs_rejected > 0
