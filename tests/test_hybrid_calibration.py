"""Tests for the LAX-PREMA hybrid and offline-profiling warm start."""

import pytest

from repro.config import SimConfig
from repro.core.calibration import (offline_profile, profile_workload,
                                    warm_table)
from repro.core.profiling import KernelProfilingTable
from repro.errors import ConfigError, WorkloadError
from repro.schedulers.hybrid import LaxityPremaHybridScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.units import MS, US
from repro.workloads.kernels import GMM_KERNEL, STEM_KERNEL
from repro.workloads.registry import build_workload

from conftest import make_descriptor, make_job


class TestHybridScheduler:
    def test_registered(self):
        policy = make_scheduler("LAX-PREMA")
        assert isinstance(policy, LaxityPremaHybridScheduler)

    def test_inherits_lax_admission(self):
        jobs = [make_job(job_id=i, arrival=(i + 1) * US, deadline=50 * US,
                         descriptors=[make_descriptor(
                             name="n", num_wgs=32, wg_work=25 * US)])
                for i in range(8)]
        policy = make_scheduler("LAX-PREMA")
        system = GPUSystem(policy, SimConfig())
        system.submit_workload(jobs)
        metrics = system.run()
        assert metrics.jobs_rejected > 0

    def test_preempts_slack_rich_residents_for_urgent_work(self):
        # A huge-laxity job (loose deadline) saturates the device with
        # thread-hungry WGs, then a tight-deadline job arrives.  Without
        # preemption the urgent job must wait ~5 ms; the hybrid evicts.
        hog = make_job(job_id=0, deadline=200 * MS, descriptors=[
            make_descriptor(name="hog", num_wgs=32, wg_work=5 * MS,
                            threads_per_wg=640)])
        urgent = make_job(job_id=1, arrival=400 * US, deadline=2 * MS,
                          descriptors=[
            make_descriptor(name="urg", num_wgs=32, wg_work=300 * US,
                            threads_per_wg=640)])
        policy = make_scheduler("LAX-PREMA")
        system = GPUSystem(policy, SimConfig())
        system.submit_workload([hog, urgent])
        metrics = system.run()
        outcome = {o.job_id: o for o in metrics.outcomes}
        assert policy.preemption_events > 0
        assert outcome[1].met_deadline

    def test_no_preemption_when_slack_gap_small(self):
        # Two equally-tight jobs: evicting one for the other burns work
        # without helping, and the laxity-gap gate must refuse.
        jobs = [make_job(job_id=i, arrival=(i + 1) * 10 * US,
                         deadline=3 * MS,
                         descriptors=[make_descriptor(
                             name="k", num_wgs=32, wg_work=MS,
                             threads_per_wg=640)])
                for i in range(2)]
        policy = make_scheduler("LAX-PREMA")
        system = GPUSystem(policy, SimConfig())
        system.submit_workload(jobs)
        system.run()
        assert policy.preemption_events == 0

    def test_matches_or_beats_lax_on_mixed_rnn(self):
        jobs_a = build_workload("LSTM", "high", num_jobs=48, seed=1)
        lax = GPUSystem(make_scheduler("LAX"), SimConfig())
        lax.submit_workload(jobs_a)
        lax_metrics = lax.run()
        jobs_b = build_workload("LSTM", "high", num_jobs=48, seed=1)
        hybrid = GPUSystem(make_scheduler("LAX-PREMA"), SimConfig())
        hybrid.submit_workload(jobs_b)
        hybrid_metrics = hybrid.run()
        # The hybrid must not regress badly where LAX already wins.
        assert (hybrid_metrics.jobs_meeting_deadline
                >= lax_metrics.jobs_meeting_deadline * 0.85)


class TestOfflineProfiling:
    def test_measures_isolated_rates(self):
        config = SimConfig()
        desc = STEM_KERNEL.descriptor(config.gpu)
        rates = offline_profile([desc], config)
        # 16 WGs in ~150 us.
        assert rates[desc.name] == pytest.approx(
            16 / (150 * US), rel=0.05)

    def test_dedupes_kernel_types(self):
        config = SimConfig()
        desc = GMM_KERNEL.descriptor(config.gpu)
        rates = offline_profile([desc, desc, desc], config)
        assert len(rates) == 1

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            offline_profile([], SimConfig())

    def test_profile_workload_covers_all_types(self):
        config = SimConfig()
        jobs = build_workload("LSTM", num_jobs=2, gpu=config.gpu)
        rates = profile_workload(jobs, config)
        names = {k.name for job in jobs for k in job.kernels}
        assert set(rates) == names

    def test_warm_table_seeds_rates(self):
        table = KernelProfilingTable(100 * US)
        warm_table(table, {"k": 0.001})
        assert table.completion_rate("k", 0) == pytest.approx(0.001)

    def test_seed_rejects_non_positive(self):
        table = KernelProfilingTable(100 * US)
        with pytest.raises(ConfigError):
            table.seed_rate("k", 0.0)


class TestWarmStartedLax:
    def test_warm_rates_reach_the_profiler(self):
        config = SimConfig()
        jobs = build_workload("GMM", "high", num_jobs=8, seed=1,
                              gpu=config.gpu)
        rates = profile_workload(jobs, config)
        policy = make_scheduler("LAX", warm_rates=rates)
        system = GPUSystem(policy, config)
        name = jobs[0].kernels[0].name
        assert system.profiler.completion_rate(name, 0) is not None
        system.submit_workload(jobs)
        system.run()

    def test_warm_start_skips_probe_phase(self):
        # Cold LAX charges unknown jobs their deadline (probe phase);
        # warm LAX can admit from real estimates immediately.
        config = SimConfig()
        cold_jobs = build_workload("CUCKOO", "high", num_jobs=32, seed=1,
                                   gpu=config.gpu)
        cold = GPUSystem(make_scheduler("LAX"), config)
        cold.submit_workload(cold_jobs)
        cold_metrics = cold.run()
        warm_jobs = build_workload("CUCKOO", "high", num_jobs=32, seed=1,
                                   gpu=config.gpu)
        rates = profile_workload(warm_jobs, config)
        warm = GPUSystem(make_scheduler("LAX", warm_rates=rates), config)
        warm.submit_workload(warm_jobs)
        warm_metrics = warm.run()
        assert (warm_metrics.jobs_meeting_deadline
                >= cold_metrics.jobs_meeting_deadline)
