"""Streaming arrivals, job retirement and the SUSTAINED cell.

The load-bearing property is *prefix identity*: feeding the engine the
lazy stream truncated at N jobs must be bit-identical — outcomes, WG
traces, event counts, admission counters — to pre-generating the same N
jobs as a finite list.  Retirement is the orthogonal switch: it must
change *no* simulated decision, only where the bookkeeping lives
(per-job outcomes vs the folded stream aggregate).
"""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError, WorkloadError
from repro.harness.experiment import ExperimentSpec, run_cell
from repro.harness.spec import SweepSpec
from repro.errors import HarnessError
from repro.schedulers.registry import make_scheduler
from repro.sim import job_pool
from repro.sim.device import GPUSystem
from repro.sim.modes import engine_mode, get_retirement, retirement_mode
from repro.sim.queues import QueuePool
from repro.units import US
from repro.workloads.registry import (BENCHMARK_ORDER, BENCHMARKS,
                                      benchmark_spec, build_workload,
                                      parse_rate_multiplier,
                                      validate_rate_level)
from repro.workloads.streaming import (SUSTAINED_RATES, build_sustained_jobs,
                                       sustained_source)

from conftest import make_descriptor, make_job

RATE = SUSTAINED_RATES["high"]

#: The paper's contribution plus a fair-rotation and a hybrid baseline —
#: one representative of each dispatch style the stream must reproduce.
SCHEDULERS = ("LAX", "RR", "LAX-PREMA")


def _signature(system, metrics):
    """Everything a run decides, as a comparable value."""
    admission = getattr(system.policy, "admission", None)
    return (
        [(o.job_id, o.accepted, o.completion, o.wgs_executed, o.latency)
         for o in metrics.outcomes],
        metrics.end_time,
        metrics.wg_completions,
        system.sim.events_fired,
        system.sim.now,
        system.dispatcher.wgs_issued,
        system.dispatcher.wgs_preempted,
        system.host.commands_sent,
        (admission.accepted, admission.rejected)
        if admission is not None else None,
    )


def _finite_run(scheduler: str, num_jobs: int, telemetry=None):
    jobs = build_sustained_jobs(num_jobs, RATE, 1, SimConfig().gpu)
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       telemetry=telemetry, retire=False)
    system.submit_workload(jobs)
    return system, system.run()


def _streamed_run(scheduler: str, num_jobs: int, retire: bool = False,
                  lookahead: int = 1, telemetry=None):
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       telemetry=telemetry, retire=retire)
    system.submit_stream(sustained_source(RATE).jobs(),
                         max_jobs=num_jobs, lookahead=lookahead)
    return system, system.run()


class TestPrefixIdentity:
    @pytest.mark.parametrize("optimized", (False, True))
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_streamed_prefix_bit_identical_to_finite(self, scheduler,
                                                     optimized):
        with engine_mode(optimized):
            finite = _signature(*_finite_run(scheduler, 150))
            streamed = _signature(*_streamed_run(scheduler, 150))
        assert streamed == finite

    def test_lookahead_window_does_not_change_outcomes(self):
        one = _signature(*_streamed_run("LAX", 120, lookahead=1))
        wide = _signature(*_streamed_run("LAX", 120, lookahead=16))
        assert wide == one

    def test_wg_traces_identical(self, tmp_path):
        from repro.telemetry import TelemetryHub
        hub_f = TelemetryHub(wg_events=True)
        hub_s = TelemetryHub(wg_events=True)
        _finite_run("LAX", 80, telemetry=hub_f)
        _streamed_run("LAX", 80, telemetry=hub_s)
        assert hub_s.trace.counts() == hub_f.trace.counts()
        finite_path = str(tmp_path / "finite.jsonl")
        streamed_path = str(tmp_path / "streamed.jsonl")
        assert (hub_f.trace.to_jsonl(finite_path)
                == hub_s.trace.to_jsonl(streamed_path))
        with open(finite_path, encoding="utf-8") as f_src, \
                open(streamed_path, encoding="utf-8") as s_src:
            assert s_src.read() == f_src.read()

    def test_builder_is_stream_prefix(self):
        streamed = sustained_source(RATE).materialize(50)
        built = build_sustained_jobs(50, RATE, 1, SimConfig().gpu)
        assert [(j.job_id, j.arrival, j.tag, j.deadline) for j in streamed] \
            == [(j.job_id, j.arrival, j.tag, j.deadline) for j in built]


class TestSustainedRegistry:
    def test_registered_outside_table4_order(self):
        assert "SUSTAINED" in BENCHMARKS
        assert "SUSTAINED" not in BENCHMARK_ORDER

    def test_build_workload_entry_point(self):
        jobs = build_workload("SUSTAINED", "high", num_jobs=12)
        assert len(jobs) == 12
        assert all(job.deadline is not None for job in jobs)
        arrivals = [job.arrival for job in jobs]
        assert arrivals == sorted(arrivals)

    def test_rate_levels_and_multipliers(self):
        spec = benchmark_spec("SUSTAINED")
        assert spec.rate("high") == RATE
        assert spec.rate("x1.5") == pytest.approx(1.5 * RATE)
        assert parse_rate_multiplier("x0.25") == 0.25
        for bad in ("x0", "x-2", "xfoo", "x", "xnan", "2x", "turbo"):
            with pytest.raises(WorkloadError):
                parse_rate_multiplier(bad)
        validate_rate_level("medium")
        validate_rate_level("x2.5")
        with pytest.raises(WorkloadError):
            validate_rate_level("turbo")
        with pytest.raises(WorkloadError):
            spec.rate("turbo")

    def test_harness_specs_accept_multiplier_levels(self):
        sweep = SweepSpec(benchmarks=("SUSTAINED",), schedulers=("LAX",),
                          rate_levels=("x0.5", "x2"), num_jobs=8)
        assert [cell.rate_level for cell in sweep.cells()] == ["x0.5", "x2"]
        ExperimentSpec(benchmark="SUSTAINED", scheduler="LAX",
                       rate_level="x1.25", num_jobs=8)
        with pytest.raises(HarnessError):
            SweepSpec(benchmarks=("SUSTAINED",), schedulers=("LAX",),
                      rate_levels=("x0",), num_jobs=8)
        with pytest.raises(WorkloadError):
            ExperimentSpec(benchmark="SUSTAINED", scheduler="LAX",
                           rate_level="turbo", num_jobs=8)


class TestRetirement:
    def test_retired_run_matches_finite_aggregates(self):
        _, baseline = _finite_run("LAX", 300)
        system, retired = _streamed_run("LAX", 300, retire=True)
        assert retired.outcomes == []
        assert retired.stream is not None
        assert retired.stream.jobs == 300
        assert retired.num_jobs == baseline.num_jobs == 300
        assert retired.jobs_meeting_deadline == baseline.jobs_meeting_deadline
        assert retired.jobs_rejected == baseline.jobs_rejected
        assert retired.num_latency_sensitive == baseline.num_latency_sensitive
        assert retired.wg_completions == baseline.wg_completions
        assert retired.effective_wg_fraction \
            == baseline.effective_wg_fraction
        # 300 completions fit the latency reservoir, so percentiles
        # are exact, not sampled.
        assert retired.p99_latency_ticks == baseline.p99_latency_ticks
        assert retired.end_time == baseline.end_time

    def test_retirement_identical_decisions_on_finite_path(self):
        jobs = build_sustained_jobs(200, RATE, 1, SimConfig().gpu)
        system = GPUSystem(make_scheduler("RR"), SimConfig(), retire=True)
        system.submit_workload(jobs)
        retired = system.run()
        # Check the state drop *before* the baseline run: the event-core
        # job pool hands parked jobs back to the next template build
        # (rebound in place), so these references would no longer point
        # at retired objects afterwards.  Seed retire() clears the
        # kernel chain; the pool's park keeps the kernels for rebind —
        # the equivalent drop (see repro.sim.job_pool).
        assert all(job.retired for job in jobs)
        if not job_pool.ENABLED:
            assert all(job.kernels == [] for job in jobs)
        _, baseline = _finite_run("RR", 200)
        assert retired.outcomes == []
        assert retired.num_jobs == baseline.num_jobs
        assert retired.jobs_meeting_deadline == baseline.jobs_meeting_deadline
        assert retired.wg_completions == baseline.wg_completions

    def test_mode_flag_sets_system_default(self):
        assert get_retirement() is False
        with retirement_mode(True):
            assert get_retirement() is True
            assert GPUSystem(make_scheduler("LAX"), SimConfig()).cp.retire
        assert get_retirement() is False
        assert not GPUSystem(make_scheduler("LAX"), SimConfig()).cp.retire

    def test_retire_rejects_live_job(self):
        job = make_job()
        with pytest.raises(SimulationError):
            job.retire()

    def test_collector_retire_needs_terminal_outcome(self):
        from repro.metrics.collector import MetricsCollector
        collector = MetricsCollector()
        job = make_job()
        with pytest.raises(SimulationError):
            collector.retire_job(job)

    def test_validated_retired_run_is_clean(self):
        from repro.validation import InvariantChecker, audit_run
        checker = InvariantChecker()
        system = GPUSystem(make_scheduler("LAX"), SimConfig(),
                           validator=checker, retire=True)
        system.submit_stream(sustained_source(RATE).jobs(), max_jobs=150)
        metrics = system.run()
        summary = checker.summary()
        assert summary["violations"] == []
        assert summary["checks"]["job_retirement"] == 150
        assert audit_run(system, [], metrics) == []


class TestStreamFeeder:
    def test_empty_stream_rejected(self):
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        with pytest.raises(SimulationError, match="empty workload"):
            system.submit_stream(iter(()))

    def test_non_monotone_arrivals_rejected(self):
        jobs = [make_job(job_id=0, arrival=100 * US),
                make_job(job_id=1, arrival=50 * US)]
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        with pytest.raises(SimulationError, match="non-decreasing"):
            system.submit_stream(iter(jobs))
            system.run()

    def test_bad_window_parameters_rejected(self):
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        stream = sustained_source(RATE).jobs()
        with pytest.raises(SimulationError):
            system.submit_stream(stream, lookahead=0)
        with pytest.raises(SimulationError):
            system.submit_stream(stream, max_jobs=0)

    def test_feeder_accounting(self):
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        feeder = system.submit_stream(sustained_source(RATE).jobs(),
                                      max_jobs=40)
        system.run()
        assert feeder.fed == 40
        assert feeder.exhausted

    def test_exhaustion_exactly_at_max_jobs(self):
        """The budget truncates an over-long generator at exactly
        max_jobs without pulling a job beyond the limit."""
        pulled = []

        def counting_stream():
            for job in sustained_source(RATE).jobs():
                pulled.append(job.job_id)
                yield job

        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        feeder = system.submit_stream(counting_stream(), max_jobs=25,
                                      lookahead=1)
        system.run()
        assert feeder.fed == 25
        assert feeder.exhausted
        # lookahead=1: one pull per delivery; the budget stops the
        # feeder before it materializes job 26.
        assert len(pulled) == 25

    def test_generator_shorter_than_max_jobs(self):
        """A generator drying up below max_jobs exhausts cleanly."""
        jobs = build_sustained_jobs(10, RATE, 1, SimConfig().gpu)
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        feeder = system.submit_stream(iter(jobs), max_jobs=1000)
        metrics = system.run()
        assert feeder.fed == 10
        assert feeder.exhausted
        assert metrics.num_jobs == 10

    def test_zero_job_generator_rejected(self):
        """A generator that yields nothing is an empty workload."""
        def empty():
            return
            yield  # pragma: no cover

        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        with pytest.raises(SimulationError, match="empty workload"):
            system.submit_stream(empty())

    def test_lookahead_one_interleaves_with_retirement(self):
        """lookahead=1 with retirement on: every delivery pulls the next
        arrival from inside the handler, so the arrival lane's negative
        seq must order it ahead of same-tick device events — the run
        must match the wide-lookahead reference exactly."""
        tight = _signature(*_streamed_run("LAX", 150, lookahead=1))
        wide = _signature(*_streamed_run("LAX", 150, lookahead=64))
        assert tight == wide

    def test_arrival_lane_refuses_past_events(self):
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        system.sim.schedule(10, lambda: None)
        system.sim.run()
        with pytest.raises(SimulationError):
            system.sim.schedule_arrival(system.sim.now - 1, lambda: None)


class TestFiniteRunAssumptions:
    """Paths that used to index the full job list keep working retired."""

    def test_offline_profile_pins_per_job_outcomes(self):
        from repro.core.calibration import offline_profile
        with retirement_mode(True):
            rates = offline_profile([make_descriptor()], SimConfig())
        assert all(rate > 0 for rate in rates.values())

    def test_conformance_scenarios_pin_per_job_outcomes(self):
        from repro.validation.conformance import run_scenario
        with retirement_mode(True):
            outcome = run_scenario("LAX", "single_job")
        assert len(outcome.metrics.outcomes) == len(outcome.jobs)

    def test_run_cell_aggregates_under_retirement(self):
        spec = ExperimentSpec(benchmark="SUSTAINED", scheduler="LAX",
                              rate_level="x2", num_jobs=24, seed=77)
        with retirement_mode(True):
            result = run_cell(spec)
        metrics = result.metrics
        assert metrics.outcomes == []
        assert metrics.num_jobs == 24
        assert metrics.jobs_meeting_deadline + metrics.jobs_rejected <= 24

    def test_run_report_counts_retired_jobs(self):
        from repro.telemetry import TelemetryHub, build_report, render_markdown
        hub = TelemetryHub()
        system = GPUSystem(make_scheduler("LAX"), SimConfig(),
                           telemetry=hub, retire=True)
        system.submit_stream(sustained_source(RATE).jobs(), max_jobs=60)
        metrics = system.run()
        report = build_report(metrics, hub, label="streamed")
        assert report["summary"]["jobs_retired"] == 60
        assert report["summary"]["jobs_arrived"] == 60
        assert "jobs retired (streamed)" in render_markdown(report)

    def test_queue_ids_recycle_across_many_jobs(self):
        pool = QueuePool(2)
        jobs = [make_job(job_id=i) for i in range(7)]
        bound = []
        for job in jobs[:4]:
            queue = pool.try_bind(job)
            if queue is not None:
                bound.append(job)
        assert pool.num_bound == 2 and len(pool.backlog) == 2
        seen_queue_ids = set()
        while bound:
            job = bound.pop(0)
            seen_queue_ids.add(pool.queue_of(job).queue_id)
            successor = pool.release(job)
            if successor is not None:
                assert pool.try_bind(successor) is not None
                bound.append(successor)
        for job in jobs[4:]:
            queue = pool.try_bind(job)
            assert queue is not None
            seen_queue_ids.add(queue.queue_id)
            pool.release(job)
        assert seen_queue_ids == {0, 1}
        assert pool.num_bound == 0 and pool.num_free == 2
        assert not pool.backlog
