"""The cluster tier: Device protocol, pass-through identity, fleet runs.

The load-bearing properties:

* **N=1 identity** — a single-device cluster behind the pass-through
  router is bit-identical to a bare ``GPUSystem`` run (outcomes,
  admission counters, WG traces, engine clocks), on both the finite
  and the streamed path, in both engine modes;
* **determinism** — re-running the same fleet spec is bit-identical,
  and per-device seeds follow the documented spawn scheme (device
  ``i``'s seed never depends on the fleet size);
* **parallel == serial** — fanning device simulations over a process
  pool changes the wall clock, never a result;
* **conservation** — every arrival lands in exactly one device lane
  or the router-rejected ledger (``audit_routing`` runs after every
  fleet run).
"""

from __future__ import annotations

import pytest

from repro import cli
from repro.cluster import (ClusterMetrics, ClusterSystem, derive_device_seed,
                           derive_router_seed)
from repro.config import SimConfig
from repro.errors import ConfigError, SimulationError
from repro.schedulers.registry import make_scheduler
from repro.sim import Device
from repro.sim.device import GPUSystem
from repro.sim.modes import engine_mode
from repro.telemetry import TelemetryHub
from repro.workloads.streaming import (SUSTAINED_RATES, build_sustained_jobs,
                                       sustained_fleet_source,
                                       sustained_source)

RATE = SUSTAINED_RATES["high"]


def _device_signature(system, metrics):
    """Everything a single-device run decides, as a comparable value."""
    admission = getattr(system.policy, "admission", None)
    return (
        [(o.job_id, o.accepted, o.completion, o.wgs_executed, o.latency)
         for o in metrics.outcomes],
        metrics.end_time,
        metrics.wg_completions,
        system.sim.events_fired,
        system.sim.now,
        system.dispatcher.wgs_issued,
        system.dispatcher.wgs_preempted,
        system.host.commands_sent,
        (admission.accepted, admission.rejected)
        if admission is not None else None,
    )


def _fleet_signature(metrics: ClusterMetrics):
    """Everything a fleet run decides, as a comparable value."""
    return (
        metrics.lane_sizes,
        metrics.router_rejected,
        metrics.decision_reasons,
        metrics.num_jobs,
        metrics.jobs_meeting_deadline,
        metrics.jobs_rejected,
        tuple(None if m is None else
              (m.num_jobs, m.jobs_meeting_deadline, m.jobs_rejected,
               m.end_time, m.wg_completions)
              for m in metrics.per_device),
        tuple(None if d is None else
              (d["events_fired"], d["now"], d["wgs_issued"],
               d["commands_sent"], d["admission"])
              for d in metrics.diagnostics),
    )


def _streamed_fleet(num_devices=3, router="laxity", jobs=400,
                    multiplier=1.0, **kwargs):
    fleet = ClusterSystem("LAX", SimConfig(), num_devices=num_devices,
                          router=router, retire=True, **kwargs)
    fleet.submit_stream(
        sustained_fleet_source(num_devices, RATE * multiplier),
        max_jobs=jobs)
    return fleet


class TestDeviceProtocol:
    def test_gpu_system_is_the_reference_device(self):
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        assert isinstance(system, Device)

    def test_cluster_system_is_a_device(self):
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=2)
        assert isinstance(fleet, Device)

    def test_interchangeable_at_call_sites(self):
        """One driver function serves both tiers through the protocol."""
        def drive(device: Device):
            device.submit_workload(
                build_sustained_jobs(40, RATE, 1, SimConfig().gpu))
            return device.run()

        single = drive(GPUSystem(make_scheduler("LAX"), SimConfig()))
        fleet = drive(ClusterSystem("LAX", SimConfig(), num_devices=2))
        assert single.num_jobs == fleet.num_jobs == 40


class TestPassThroughIdentity:
    """N=1 + pass-through == bare GPUSystem, bit for bit."""

    @pytest.mark.parametrize("optimized", (False, True))
    def test_finite_path_bit_identical(self, optimized):
        with engine_mode(optimized):
            jobs = build_sustained_jobs(120, RATE, 1, SimConfig().gpu)
            bare = GPUSystem(make_scheduler("LAX"), SimConfig(),
                             retire=False)
            bare.submit_workload(jobs)
            bare_sig = _device_signature(bare, bare.run())

            fleet = ClusterSystem("LAX", SimConfig(), num_devices=1,
                                  router="pass-through", retire=False)
            fleet.submit_workload(
                build_sustained_jobs(120, RATE, 1, SimConfig().gpu))
            metrics = fleet.run()
            fleet_sig = _device_signature(fleet.devices[0],
                                          metrics.per_device[0])
        assert fleet_sig == bare_sig

    @pytest.mark.parametrize("optimized", (False, True))
    def test_streamed_path_bit_identical(self, optimized):
        with engine_mode(optimized):
            bare = GPUSystem(make_scheduler("LAX"), SimConfig(),
                             retire=False)
            bare.submit_stream(sustained_source(RATE).jobs(), max_jobs=120)
            bare_sig = _device_signature(bare, bare.run())

            fleet = ClusterSystem("LAX", SimConfig(), num_devices=1,
                                  router="pass-through", retire=False)
            fleet.submit_stream(sustained_source(RATE), max_jobs=120)
            metrics = fleet.run()
            fleet_sig = _device_signature(fleet.devices[0],
                                          metrics.per_device[0])
        assert fleet_sig == bare_sig

    def test_wg_traces_identical(self, tmp_path):
        hub_bare = TelemetryHub(wg_events=True)
        bare = GPUSystem(make_scheduler("LAX"), SimConfig(),
                         telemetry=hub_bare, retire=False)
        bare.submit_workload(
            build_sustained_jobs(60, RATE, 1, SimConfig().gpu))
        bare.run()

        hub_dev = TelemetryHub(wg_events=True)
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=1,
                              router="pass-through", retire=False,
                              device_telemetry=[hub_dev])
        fleet.submit_workload(
            build_sustained_jobs(60, RATE, 1, SimConfig().gpu))
        fleet.run()

        assert hub_dev.trace.counts() == hub_bare.trace.counts()
        bare_path = str(tmp_path / "bare.jsonl")
        fleet_path = str(tmp_path / "fleet.jsonl")
        hub_bare.trace.to_jsonl(bare_path)
        hub_dev.trace.to_jsonl(fleet_path)
        with open(bare_path, encoding="utf-8") as b, \
                open(fleet_path, encoding="utf-8") as f:
            assert f.read() == b.read()

    def test_fleet_headline_metrics_match_device(self):
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=1,
                              router="pass-through", retire=False)
        fleet.submit_workload(
            build_sustained_jobs(80, RATE, 1, SimConfig().gpu))
        metrics = fleet.run()
        device = metrics.per_device[0]
        assert metrics.num_jobs == device.num_jobs
        assert metrics.jobs_meeting_deadline == device.jobs_meeting_deadline
        assert metrics.deadline_ratio == device.deadline_ratio
        assert metrics.p99_latency_ticks == device.p99_latency_ticks
        assert metrics.load_imbalance == 1.0


class TestDeterministicSeeding:
    def test_device_seed_spawn_is_stable(self):
        # The documented spawn scheme: SeedSequence(seed, (1, index)).
        assert derive_device_seed(1, 0) == derive_device_seed(1, 0)
        assert derive_device_seed(1, 0) != derive_device_seed(1, 1)
        assert derive_device_seed(1, 0) != derive_device_seed(2, 0)
        assert derive_router_seed(1) != derive_device_seed(1, 0)

    def test_device_seeds_independent_of_fleet_size(self):
        small = ClusterSystem("LAX", SimConfig(), num_devices=2)
        large = ClusterSystem("LAX", SimConfig(), num_devices=5)
        assert large.device_seeds[:2] == small.device_seeds

    @pytest.mark.parametrize("router", ("round-robin", "power-of-two",
                                        "laxity"))
    def test_rerun_same_spec_bit_identical(self, router):
        first = _streamed_fleet(router=router, multiplier=1.5).run()
        second = _streamed_fleet(router=router, multiplier=1.5).run()
        assert _fleet_signature(second) == _fleet_signature(first)


class TestParallelExecution:
    def test_pool_bit_identical_to_serial(self):
        serial = _streamed_fleet(jobs=600, multiplier=1.5, workers=1).run()
        pooled = _streamed_fleet(jobs=600, multiplier=1.5, workers=3).run()
        assert _fleet_signature(pooled) == _fleet_signature(serial)
        assert pooled.workers == 3

    def test_finite_lanes_through_the_pool(self):
        jobs = build_sustained_jobs(300, 3 * RATE, 1, SimConfig().gpu)
        serial = ClusterSystem("LAX", SimConfig(), num_devices=3,
                               router="round-robin")
        serial.submit_workload(jobs)
        pooled = ClusterSystem("LAX", SimConfig(), num_devices=3,
                               router="round-robin", workers=3)
        pooled.submit_workload(
            build_sustained_jobs(300, 3 * RATE, 1, SimConfig().gpu))
        assert _fleet_signature(pooled.run()) == \
            _fleet_signature(serial.run())


class TestFleetRuns:
    def test_streamed_fleet_with_retirement(self):
        metrics = _streamed_fleet(num_devices=4, jobs=800).run()
        assert metrics.num_jobs == 800
        assert sum(metrics.lane_sizes) + metrics.router_rejected == 800
        assert 0.0 < metrics.deadline_ratio <= 1.0
        assert metrics.load_imbalance >= 1.0
        assert metrics.describe().startswith("laxity:")

    def test_validated_fleet_run_is_clean(self):
        metrics = _streamed_fleet(num_devices=2, jobs=300,
                                  validate=True).run()
        assert metrics.num_jobs == 300

    def test_router_decisions_reach_the_hub(self):
        hub = TelemetryHub(decision_events=True)
        fleet = _streamed_fleet(num_devices=2, jobs=200, telemetry=hub)
        fleet.run()
        assert hub.decisions.counts().get("router_decision") == 200
        event = hub.decisions.of_kind("router_decision")[0]
        assert event.scheduler == "laxity"
        assert set(("job_id", "device", "accepted",
                    "reason")) <= set(event.fields)

    def test_overload_sheds_at_the_router(self):
        metrics = _streamed_fleet(num_devices=2, jobs=600,
                                  multiplier=3.0).run()
        assert metrics.router_rejected > 0
        assert metrics.jobs_rejected >= metrics.router_rejected
        assert metrics.decision_reasons.get("router_reject", 0) \
            == metrics.router_rejected

    def test_idle_devices_stay_unbuilt(self):
        # Two jobs across four devices: at least two devices are idle.
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=4,
                              router="least-loaded")
        fleet.submit_workload(
            build_sustained_jobs(2, RATE, 1, SimConfig().gpu))
        metrics = fleet.run()
        assert metrics.num_jobs == 2
        idle = [d for d, size in enumerate(metrics.lane_sizes) if size == 0]
        assert len(idle) >= 2
        for d in idle:
            assert metrics.per_device[d] is None


class TestSubmissionErrors:
    def test_double_submit_rejected(self):
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=2)
        fleet.submit_workload(
            build_sustained_jobs(4, RATE, 1, SimConfig().gpu))
        with pytest.raises(SimulationError, match="already submitted"):
            fleet.submit_workload(
                build_sustained_jobs(4, RATE, 1, SimConfig().gpu))

    def test_run_without_submit_rejected(self):
        with pytest.raises(SimulationError, match="no workload"):
            ClusterSystem("LAX", SimConfig(), num_devices=2).run()

    def test_empty_workload_rejected(self):
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=2)
        with pytest.raises(SimulationError, match="empty workload"):
            fleet.submit_workload([])

    def test_source_stream_needs_max_jobs(self):
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=2)
        with pytest.raises(SimulationError, match="max_jobs"):
            fleet.submit_stream(sustained_fleet_source(2, RATE))

    def test_finite_iterable_stream_allowed(self):
        fleet = ClusterSystem("LAX", SimConfig(), num_devices=2)
        fleet.submit_stream(
            iter(build_sustained_jobs(30, 2 * RATE, 1, SimConfig().gpu)),
            max_jobs=20)
        assert fleet.run().num_jobs == 20

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSystem("LAX", SimConfig(), num_devices=0)
        with pytest.raises(ConfigError):
            ClusterSystem("LAX", SimConfig(), num_devices=2,
                          router="pass-through")
        with pytest.raises(ConfigError):
            ClusterSystem("LAX", SimConfig(), num_devices=2, workers=0)
        with pytest.raises(ConfigError):
            ClusterSystem("LAX", SimConfig(), num_devices=2, workers=2,
                          device_telemetry=[None, None])
        with pytest.raises(ConfigError):
            ClusterSystem("LAX", SimConfig(), num_devices=2,
                          device_telemetry=[None])


class TestClusterCLI:
    def test_streamed_cluster_run(self, capsys):
        code = cli.main(["--benchmark", "SUSTAINED", "--devices", "2",
                         "--router", "laxity", "--stream", "300",
                         "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet SLO attainment" in out
        assert "router conservation ok" in out

    def test_finite_cluster_run(self, capsys):
        code = cli.main(["--benchmark", "LSTM", "--devices", "2",
                         "--jobs", "24"])
        assert code == 0
        assert "device 1" in capsys.readouterr().out

    def test_router_without_devices_rejected(self, capsys):
        assert cli.main(["--router", "laxity"]) == 2
        assert "--devices" in capsys.readouterr().out

    def test_unknown_router_rejected(self, capsys):
        assert cli.main(["--devices", "2", "--router", "nope"]) == 2
        assert "unknown router" in capsys.readouterr().out

    def test_cluster_with_telemetry_flags_rejected(self, capsys):
        assert cli.main(["--devices", "2", "--emit-telemetry",
                         "out/"]) == 2
        assert "cannot be combined" in capsys.readouterr().out
