"""Unit tests for metrics collection and run summaries."""

import pytest

from repro.config import EnergyConfig
from repro.errors import SimulationError
from repro.metrics.collector import JobOutcome, MetricsCollector, RunMetrics
from repro.sim.energy import EnergyMeter
from repro.units import MS, SEC, US

from conftest import make_descriptor, make_job


def finished_outcome(job_id=0, arrival=0, deadline=MS, completion=None,
                     accepted=True, wgs=4):
    outcome = JobOutcome(job_id=job_id, benchmark="T", tag=None,
                         arrival=arrival, deadline=deadline, num_kernels=1,
                         total_wgs=wgs, accepted=accepted,
                         completion=completion)
    outcome.wgs_executed = wgs if completion is not None else 0
    return outcome


def run_metrics(outcomes, end_time=10 * MS, energy_joules=1.0):
    return RunMetrics(outcomes=outcomes, end_time=end_time, first_arrival=0,
                      total_energy_joules=energy_joules,
                      dynamic_energy_joules=energy_joules,
                      static_energy_joules=0.0,
                      wg_completions=sum(o.wgs_executed for o in outcomes))


class TestJobOutcome:
    def test_latency(self):
        outcome = finished_outcome(arrival=10, completion=110)
        assert outcome.latency == 100

    def test_latency_none_when_unfinished(self):
        assert finished_outcome().latency is None

    def test_met_deadline(self):
        assert finished_outcome(deadline=100, completion=100).met_deadline
        assert not finished_outcome(deadline=100, completion=101).met_deadline
        assert not finished_outcome(accepted=False).met_deadline


class TestCollectorFlow:
    def test_full_lifecycle(self):
        collector = MetricsCollector()
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        collector.on_job_arrival(job, now=0)
        collector.on_job_admitted(job)
        kernel = job.kernels[0]
        job.mark_enqueued(0, 0)
        job.mark_ready()
        kernel.mark_active(0)
        job.mark_running(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_completed(10)
        collector.on_wg_complete(kernel)
        collector.on_kernel_complete(kernel)
        job.mark_completed(10)
        collector.on_job_complete(job)
        metrics = collector.finalize(10, EnergyMeter(EnergyConfig()))
        assert metrics.num_jobs == 1
        assert metrics.jobs_meeting_deadline == 1
        assert metrics.outcomes[0].wgs_executed == 1

    def test_double_arrival_rejected(self):
        collector = MetricsCollector()
        job = make_job()
        collector.on_job_arrival(job, 0)
        with pytest.raises(SimulationError):
            collector.on_job_arrival(job, 1)

    def test_event_for_unknown_job_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            collector.on_job_admitted(make_job())

    def test_rejection_tracked(self):
        collector = MetricsCollector()
        job = make_job()
        collector.on_job_arrival(job, 0)
        collector.on_job_rejected(job)
        metrics = collector.finalize(100, EnergyMeter(EnergyConfig()))
        assert metrics.jobs_rejected == 1
        assert metrics.outcomes[0].accepted is False


class TestRunMetrics:
    def test_deadline_ratio(self):
        metrics = run_metrics([
            finished_outcome(0, completion=100),
            finished_outcome(1, completion=2 * MS),
            finished_outcome(2, accepted=False),
        ])
        assert metrics.jobs_meeting_deadline == 1
        assert metrics.deadline_ratio == pytest.approx(1 / 3)

    def test_successful_throughput(self):
        metrics = run_metrics([finished_outcome(0, completion=100)],
                              end_time=SEC)
        assert metrics.successful_throughput == pytest.approx(1.0)

    def test_p99_over_completed_only(self):
        metrics = run_metrics([
            finished_outcome(0, completion=100 * US),
            finished_outcome(1, accepted=False),
        ])
        assert metrics.p99_latency_ticks == pytest.approx(100 * US)

    def test_p99_none_when_nothing_completed(self):
        metrics = run_metrics([finished_outcome(0, accepted=False)])
        assert metrics.p99_latency_ticks is None

    def test_energy_per_successful_job(self):
        metrics = run_metrics([finished_outcome(0, completion=100)],
                              energy_joules=0.002)
        assert metrics.energy_per_successful_job_mj == pytest.approx(2.0)

    def test_energy_none_without_successes(self):
        metrics = run_metrics([finished_outcome(0, accepted=False)])
        assert metrics.energy_per_successful_job_mj is None

    def test_effective_wg_fraction(self):
        good = finished_outcome(0, completion=100, wgs=6)
        late = finished_outcome(1, deadline=10, completion=100, wgs=2)
        metrics = run_metrics([good, late])
        assert metrics.effective_wg_fraction == pytest.approx(6 / 8)
        assert metrics.wasted_wg_fraction == pytest.approx(2 / 8)

    def test_effective_fraction_zero_without_work(self):
        metrics = run_metrics([finished_outcome(0, accepted=False)])
        assert metrics.effective_wg_fraction == 0.0
