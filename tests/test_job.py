"""Unit tests for the job model and its state machine."""

import pytest

from repro.config import GPUConfig
from repro.errors import SimulationError, WorkloadError
from repro.sim.job import Job, JobState
from repro.units import MS, US

from conftest import make_descriptor, make_job


class TestConstruction:
    def test_kernels_built_in_order(self):
        descs = [make_descriptor(name=f"k{i}") for i in range(3)]
        job = make_job(descriptors=descs)
        assert [k.name for k in job.kernels] == ["k0", "k1", "k2"]
        assert [k.index for k in job.kernels] == [0, 1, 2]

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(WorkloadError):
            Job(0, "X", [], arrival=0, deadline=MS)

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(WorkloadError):
            make_job(deadline=0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(WorkloadError):
            Job(0, "X", [make_descriptor()], arrival=-1, deadline=MS)

    def test_initial_state(self):
        job = make_job()
        assert job.state is JobState.INIT
        assert job.is_live
        assert not job.is_done
        assert job.released_kernels == 0


class TestShape:
    def test_total_wgs(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=3),
                                    make_descriptor(num_wgs=5)])
        assert job.total_wgs == 8

    def test_total_work(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=2, wg_work=10),
                                    make_descriptor(num_wgs=3, wg_work=5)])
        assert job.total_work == 35

    def test_isolated_time_sums_kernels(self):
        gpu = GPUConfig()
        descs = [make_descriptor(num_wgs=8, wg_work=100),
                 make_descriptor(num_wgs=64, wg_work=100)]
        job = make_job(descriptors=descs)
        assert job.isolated_time(gpu) == 100 + 200

    def test_absolute_deadline(self):
        job = make_job(arrival=5 * US, deadline=40 * US)
        assert job.absolute_deadline == 45 * US


class TestStateMachine:
    def test_happy_path(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        job.mark_enqueued(now=10, queue_id=3)
        assert job.queue_id == 3
        assert job.start_time == 10
        job.mark_ready()
        assert job.state is JobState.READY
        kernel = job.kernels[0]
        kernel.mark_active(11)
        job.mark_running(now=12)
        assert job.state is JobState.RUNNING
        assert job.first_issue_time == 12
        kernel.note_wg_issued(12)
        kernel.note_wg_completed(20)
        job.mark_completed(now=20)
        assert job.state is JobState.COMPLETED
        assert job.completion_time == 20
        assert job.is_done

    def test_mark_running_twice_is_fine(self):
        job = make_job()
        job.mark_enqueued(0, 0)
        job.mark_ready()
        job.mark_running(1)
        job.mark_running(2)
        assert job.first_issue_time == 1

    def test_complete_with_pending_kernels_rejected(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        job.mark_enqueued(0, 0)
        job.mark_ready()
        job.mark_running(0)
        with pytest.raises(SimulationError):
            job.mark_completed(5)

    def test_reject_from_init(self):
        job = make_job()
        job.mark_rejected(now=7)
        assert job.state is JobState.REJECTED
        assert job.rejection_time == 7

    def test_late_reject_from_running(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        job.mark_enqueued(0, 0)
        job.mark_ready()
        job.mark_running(0)
        job.mark_rejected(now=50)
        assert job.state is JobState.REJECTED

    def test_reject_after_completion_rejected(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        job.mark_enqueued(0, 0)
        job.mark_ready()
        job.mark_running(0)
        kernel = job.kernels[0]
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_completed(5)
        job.mark_completed(5)
        with pytest.raises(SimulationError):
            job.mark_rejected(6)

    def test_enqueue_twice_rejected(self):
        job = make_job()
        job.mark_enqueued(0, 0)
        job.mark_ready()
        with pytest.raises(SimulationError):
            job.mark_enqueued(1, 1)


class TestDeadlineArithmetic:
    def test_elapsed_measured_from_arrival(self):
        job = make_job(arrival=100)
        assert job.elapsed(150) == 50

    def test_elapsed_never_negative(self):
        job = make_job(arrival=100)
        assert job.elapsed(50) == 0

    def test_latency_none_before_completion(self):
        assert make_job().latency is None

    def test_met_deadline_true_on_time(self):
        job = make_job(arrival=0, deadline=100)
        job.completion_time = 100
        assert job.met_deadline

    def test_met_deadline_false_when_late(self):
        job = make_job(arrival=0, deadline=100)
        job.completion_time = 101
        assert not job.met_deadline

    def test_met_deadline_false_when_rejected(self):
        job = make_job()
        job.mark_rejected(5)
        assert not job.met_deadline


class TestNextKernel:
    def test_walks_the_chain(self):
        job = make_job(descriptors=[make_descriptor(name="a", num_wgs=1),
                                    make_descriptor(name="b", num_wgs=1)])
        assert job.next_kernel().name == "a"
        first = job.kernels[0]
        first.mark_active(0)
        first.note_wg_issued(0)
        first.note_wg_completed(1)
        assert job.next_kernel().name == "b"

    def test_none_when_all_done(self):
        job = make_job(descriptors=[make_descriptor(num_wgs=1)])
        kernel = job.kernels[0]
        kernel.mark_active(0)
        kernel.note_wg_issued(0)
        kernel.note_wg_completed(1)
        assert job.next_kernel() is None
