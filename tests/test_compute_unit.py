"""Unit and property tests for the processor-sharing compute unit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import EnergyConfig, GPUConfig
from repro.errors import ResourceError
from repro.sim.compute_unit import ComputeUnit
from repro.sim.energy import EnergyMeter
from repro.sim.engine import Simulator
from repro.units import US

from conftest import make_descriptor, make_job


def build_cu(sim=None, config=None):
    sim = sim or Simulator()
    config = config or GPUConfig()
    completions = []
    meter = EnergyMeter(EnergyConfig())
    cu = ComputeUnit(0, sim, config, meter,
                     lambda kernel, now: completions.append((kernel, now)))
    return sim, cu, completions, meter


def active_kernel(num_wgs=4, wg_work=10 * US, **kwargs):
    job = make_job(descriptors=[make_descriptor(num_wgs=num_wgs,
                                                wg_work=wg_work, **kwargs)])
    kernel = job.kernels[0]
    kernel.mark_active(0)
    return kernel


class TestResourceAccounting:
    def test_accepts_when_resources_free(self):
        _, cu, _, _ = build_cu()
        assert cu.can_accept(make_descriptor())

    def test_thread_limit(self):
        _, cu, _, _ = build_cu()
        kernel = active_kernel(num_wgs=2, threads_per_wg=2560)
        cu.start_wg(kernel)
        assert not cu.can_accept(kernel.descriptor)

    def test_vgpr_limit(self):
        _, cu, _, _ = build_cu()
        kernel = active_kernel(num_wgs=2, vgpr=200 * 1024)
        cu.start_wg(kernel)
        assert not cu.can_accept(kernel.descriptor)

    def test_lds_limit(self):
        _, cu, _, _ = build_cu()
        kernel = active_kernel(num_wgs=2, lds=40 * 1024)
        cu.start_wg(kernel)
        assert not cu.can_accept(kernel.descriptor)

    def test_wavefront_limit(self):
        _, cu, _, _ = build_cu()
        # 640 threads = 10 wavefronts per WG; 4 WGs fill the 40 slots.
        kernel = active_kernel(num_wgs=5, threads_per_wg=640)
        for _ in range(4):
            cu.start_wg(kernel)
        assert not cu.can_accept(kernel.descriptor)

    def test_start_beyond_capacity_raises(self):
        _, cu, _, _ = build_cu()
        kernel = active_kernel(num_wgs=2, threads_per_wg=2560)
        cu.start_wg(kernel)
        with pytest.raises(ResourceError):
            cu.start_wg(kernel)

    def test_resources_freed_on_completion(self):
        sim, cu, _, _ = build_cu()
        kernel = active_kernel(num_wgs=1)
        cu.start_wg(kernel)
        assert cu.used_threads > 0
        sim.run()
        assert cu.used_threads == 0
        assert cu.num_residents == 0


class TestTiming:
    def test_single_wg_completes_after_its_work(self):
        sim, cu, completions, _ = build_cu()
        kernel = active_kernel(num_wgs=1, wg_work=10 * US)
        cu.start_wg(kernel)
        sim.run()
        assert completions[0][1] == 10 * US

    def test_full_rate_up_to_simd_count(self):
        sim, cu, completions, _ = build_cu()
        kernel = active_kernel(num_wgs=4, wg_work=10 * US)
        for _ in range(4):
            cu.start_wg(kernel)
        sim.run()
        assert all(now == 10 * US for _, now in completions)

    def test_processor_sharing_slows_beyond_concurrency(self):
        sim, cu, completions, _ = build_cu()
        kernel = active_kernel(num_wgs=8, wg_work=10 * US)
        for _ in range(8):
            cu.start_wg(kernel)
        sim.run()
        # 8 residents at concurrency 4: everyone at half rate.
        assert all(now == 20 * US for _, now in completions)

    def test_latency_bound_kernel_keeps_full_rate(self):
        sim, cu, completions, _ = build_cu()
        kernel = active_kernel(num_wgs=8, wg_work=10 * US, cu_concurrency=8)
        for _ in range(8):
            cu.start_wg(kernel)
        sim.run()
        assert all(now == 10 * US for _, now in completions)

    def test_late_joiner_slows_early_wg(self):
        sim, cu, completions, _ = build_cu()
        first = active_kernel(num_wgs=4, wg_work=10 * US)
        second = active_kernel(num_wgs=4, wg_work=10 * US)
        for _ in range(4):
            cu.start_wg(first)
        sim.run_until(5 * US)
        for _ in range(4):
            cu.start_wg(second)
        sim.run()
        first_times = [now for kernel, now in completions if kernel is first]
        # 5 us at rate 1 + remaining 5 us of work at rate 0.5 = 15 us total.
        assert all(now == 15 * US for now in first_times)

    def test_work_conservation(self):
        sim, cu, _, _ = build_cu()
        kernel = active_kernel(num_wgs=6, wg_work=10 * US)
        for _ in range(6):
            cu.start_wg(kernel)
        sim.run()
        assert cu.work_done == pytest.approx(6 * 10 * US, rel=1e-6)


class TestPreemption:
    def test_preempt_removes_kernel_wgs(self):
        sim, cu, completions, _ = build_cu()
        victim = active_kernel(num_wgs=2, wg_work=100 * US)
        cu.start_wg(victim)
        cu.start_wg(victim)
        sim.run_until(10 * US)
        evicted = cu.preempt_kernel(victim, hold_time=0)
        assert evicted == 2
        assert cu.num_residents == 0
        assert victim.wgs_pending == 2
        sim.run()
        assert completions == []

    def test_preempt_unknown_kernel_is_noop(self):
        _, cu, _, _ = build_cu()
        assert cu.preempt_kernel(active_kernel(), hold_time=0) == 0

    def test_hold_blocks_resources_until_release(self):
        sim, cu, _, _ = build_cu()
        victim = active_kernel(num_wgs=1, threads_per_wg=2560,
                               wg_work=100 * US)
        cu.start_wg(victim)
        cu.preempt_kernel(victim, hold_time=50 * US)
        assert cu.free_threads() == 0
        sim.run_until(50 * US)
        sim.run()
        assert cu.free_threads() == GPUConfig().threads_per_cu

    def test_survivors_speed_up_after_preemption(self):
        sim, cu, completions, _ = build_cu()
        victim = active_kernel(num_wgs=4, wg_work=100 * US)
        survivor = active_kernel(num_wgs=4, wg_work=10 * US)
        for _ in range(4):
            cu.start_wg(victim)
        for _ in range(4):
            cu.start_wg(survivor)
        # 8 residents at rate 0.5; after eviction at t=4us survivors go
        # full rate: 4us * 0.5 = 2us done, 8us left -> finish at 12us.
        sim.run_until(4 * US)
        cu.preempt_kernel(victim, hold_time=0)
        sim.run()
        times = [now for kernel, now in completions if kernel is survivor]
        assert all(now == 12 * US for now in times)


class TestComputeUnitProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=12),
                    min_size=1, max_size=5),
           st.integers(min_value=1, max_value=50))
    def test_all_wgs_complete_and_work_is_conserved(self, wg_counts, work_us):
        sim = Simulator()
        meter = EnergyMeter(EnergyConfig())
        completions = []
        cu = ComputeUnit(0, sim, GPUConfig(), meter,
                         lambda kernel, now: completions.append(kernel))
        kernels = []
        total_wgs = 0
        for index, count in enumerate(wg_counts):
            kernel = active_kernel(num_wgs=count, wg_work=work_us * US)
            kernels.append(kernel)
            for _ in range(count):
                if cu.can_accept(kernel.descriptor):
                    cu.start_wg(kernel)
                    total_wgs += 1
        sim.run()
        assert len(completions) == total_wgs
        assert cu.work_done == pytest.approx(total_wgs * work_us * US,
                                             rel=1e-6)
        assert cu.num_residents == 0
        assert cu.used_threads == 0
