"""Edge-case tests for the command processor and host interplay."""

import dataclasses

import pytest

from repro.config import GPUConfig, SimConfig
from repro.errors import SimulationError, WorkloadError
from repro.schedulers.cpu_side.pro import ProphetScheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import JobState
from repro.units import MS, US

from conftest import make_descriptor, make_job


class TestAppendWork:
    def test_append_preserves_release_semantics_for_host_jobs(self):
        # A host job with only kernel 0 released gets more kernels
        # appended: they stay invisible until the host releases them.
        job = make_job(deadline=100 * MS, descriptors=[
            make_descriptor(name="a", num_wgs=1, wg_work=50 * US)])
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([job])
        system.sim.run_until(10 * US)

        def append():
            was_released = job.released_kernels
            system.cp.append_work(job, [make_descriptor(
                name="b", num_wgs=1, wg_work=50 * US)])
            return was_released

        system.sim.schedule_at(20 * US, append)
        system.run()
        # Device-side policy releases everything, so both kernels ran.
        assert job.kernels[1].is_done

    def test_append_while_inspection_pending(self):
        job = make_job(deadline=100 * MS, descriptors=[
            make_descriptor(name="a", num_wgs=1, wg_work=50 * US)])
        system = GPUSystem(make_scheduler("LAX"), SimConfig())
        system.submit_workload([job])
        # Append at t=1us, before the 2us inspection completes.
        system.sim.schedule_at(
            1 * US, system.cp.append_work, job,
            [make_descriptor(name="b", num_wgs=1, wg_work=10 * US)])
        metrics = system.run()
        assert job.state is JobState.COMPLETED
        assert metrics.outcomes[0].wgs_executed == 2

    def test_append_empty_rejected(self):
        job = make_job()
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload([job])
        with pytest.raises(WorkloadError):
            system.cp.append_work(job, [])
        system.run()


class TestBacklogPaths:
    def _tiny_pool_config(self):
        return SimConfig(gpu=dataclasses.replace(GPUConfig(), num_queues=2))

    def test_host_policy_backlog_resubmission(self):
        # PRO (host-side) with more jobs than queues: backlogged jobs are
        # resubmitted with inspection skipped and still complete.
        config = self._tiny_pool_config()
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=30 * US)])
                for i in range(5)]
        system = GPUSystem(ProphetScheduler(), config)
        system.submit_workload(jobs)
        metrics = system.run()
        assert all(o.completion is not None for o in metrics.outcomes)

    def test_lax_backlog_goes_through_admission(self):
        config = self._tiny_pool_config()
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=4 * MS,
                         descriptors=[make_descriptor(name="k", num_wgs=8,
                                                      wg_work=MS)])
                for i in range(12)]
        system = GPUSystem(make_scheduler("LAX"), config)
        system.submit_workload(jobs)
        metrics = system.run()
        for job in jobs:
            assert job.is_done
        # Two queues serialise the backlog into 1 ms pairs; the pairs that
        # only reach a queue after ~4 ms are past their deadline and must
        # be refused rather than executed.
        assert metrics.jobs_rejected > 0
        assert metrics.jobs_meeting_deadline >= 6

    def test_cancel_backlogged_job_promotes_follower(self):
        config = self._tiny_pool_config()
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=100 * US)])
                for i in range(3)]
        system = GPUSystem(make_scheduler("RR"), config)
        system.submit_workload(jobs)
        system.sim.schedule_at(30 * US, system.cp.cancel_job, jobs[0])
        metrics = system.run()
        outcomes = {o.job_id: o for o in metrics.outcomes}
        assert outcomes[0].accepted is False
        assert outcomes[1].completion is not None
        assert outcomes[2].completion is not None


class TestParserBank:
    def test_serial_inspections_beyond_width(self):
        # 9 simultaneous arrivals through a 4-wide, 2us parser bank: the
        # 9th job's inspection completes at +6us.
        jobs = [make_job(job_id=i, arrival=10 * US, deadline=100 * MS,
                         descriptors=[make_descriptor(num_wgs=1,
                                                      wg_work=10 * US)])
                for i in range(9)]
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        system.submit_workload(jobs)
        metrics = system.run()
        latencies = sorted(o.latency for o in metrics.outcomes)
        assert latencies[0] == 14 * US
        assert latencies[-1] == 18 * US  # 6us inspection wave + 2 + 10

    def test_resubmission_guard(self):
        system = GPUSystem(make_scheduler("RR"), SimConfig())
        job = make_job(descriptors=[make_descriptor(num_wgs=1,
                                                    wg_work=10 * US)])
        system.submit_workload([job])
        system.run()
        with pytest.raises(SimulationError):
            system.cp.submit_job(job)
