"""Property tests: determinism, metamorphic laws, fuzzing under the checker.

Built on the shared strategies in :mod:`strategies`.  Three families:

* **Seed determinism** — the simulator is a pure function of its inputs:
  the same workload (or the same generator seed) yields bit-identical
  ``MetricsCollector`` output, and attaching the invariant checker
  changes nothing.
* **Metamorphic deadline scaling** — on *uncontended* workloads, scaling
  every deadline up never increases LAX's miss count.  (The unrestricted
  version is genuinely false: under contention, a looser deadline can get
  a job past admission whose execution then pushes a neighbour over its
  deadline — admission feedback makes global scaling non-monotone.  See
  docs/validation.md.)
* **Randomized runs under the checker** — arbitrary workloads through
  representative schedulers with every invariant armed.
"""

import dataclasses

from hypothesis import given, strategies as st

from repro.config import SimConfig
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import Job
from repro.units import US
from repro.validation import InvariantChecker
from repro.workloads.registry import build_workload

from strategies import (REPRESENTATIVE_SCHEDULERS, kernel_descriptors,
                        scheduler_names, workloads)


def run(jobs, scheduler, validator=None):
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       validator=validator)
    system.submit_workload(jobs)
    return system, system.run()


def misses(metrics):
    return sum(1 for o in metrics.outcomes
               if o.is_latency_sensitive and not o.met_deadline)


class TestSeedDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_seed_bit_identical_metrics(self, seed):
        gpu = SimConfig().gpu
        results = []
        for _ in range(2):
            jobs = build_workload("LSTM", "high", num_jobs=12, seed=seed,
                                  gpu=gpu)
            _, metrics = run(jobs, "LAX")
            results.append(dataclasses.asdict(metrics))
        assert results[0] == results[1]

    @given(jobs=workloads(max_jobs=5), scheduler=scheduler_names)
    def test_checker_never_perturbs_the_run(self, jobs, scheduler):
        def rebuild(template):
            return [Job(job_id=j.job_id, benchmark=j.benchmark,
                        descriptors=[k.descriptor for k in j.kernels],
                        arrival=j.arrival, deadline=j.deadline,
                        user_priority=j.user_priority,
                        dependencies=j.dependencies)
                    for j in template]

        _, baseline = run(rebuild(jobs), scheduler)
        _, validated = run(rebuild(jobs), scheduler,
                           validator=InvariantChecker())
        assert dataclasses.asdict(baseline) == dataclasses.asdict(validated)


@st.composite
def uncontended_workloads(draw, max_jobs: int = 5):
    """Jobs spaced so far apart that each runs on an idle device.

    The gap after each arrival exceeds the job's isolated time by a wide
    margin, so completion times are contention-free and deadline verdicts
    depend only on the job's own deadline — the regime where deadline
    scaling is provably monotone.
    """
    gpu = SimConfig().gpu
    count = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    clock = 0
    for job_id in range(count):
        descriptors = [draw(kernel_descriptors) for _ in
                       range(draw(st.integers(min_value=1, max_value=3)))]
        probe = Job(job_id=job_id, benchmark="SPACED",
                    descriptors=descriptors, arrival=clock,
                    deadline=draw(st.integers(min_value=50, max_value=3000))
                    * US)
        jobs.append(probe)
        clock += probe.isolated_time(gpu) * 4 + 500 * US
    return jobs


class TestMetamorphicDeadlineScaling:
    @given(jobs=uncontended_workloads(),
           scale=st.sampled_from([2, 4, 16]))
    def test_scaling_deadlines_up_never_adds_misses(self, jobs, scale):
        def with_scale(factor):
            return [Job(job_id=j.job_id, benchmark=j.benchmark,
                        descriptors=[k.descriptor for k in j.kernels],
                        arrival=j.arrival, deadline=j.deadline * factor)
                    for j in jobs]

        _, base = run(with_scale(1), "LAX")
        _, scaled = run(with_scale(scale), "LAX")
        assert misses(scaled) <= misses(base)

    @given(jobs=uncontended_workloads(max_jobs=3))
    def test_generous_deadlines_always_met(self, jobs):
        gpu = SimConfig().gpu
        generous = [Job(job_id=j.job_id, benchmark=j.benchmark,
                        descriptors=[k.descriptor for k in j.kernels],
                        arrival=j.arrival,
                        deadline=j.isolated_time(gpu) * 10 + 1000 * US)
                    for j in jobs]
        _, metrics = run(generous, "LAX")
        assert misses(metrics) == 0


class TestRandomizedRunsUnderChecker:
    @given(jobs=workloads(), scheduler=scheduler_names)
    def test_invariants_hold_for_arbitrary_workloads(self, jobs, scheduler):
        checker = InvariantChecker()
        system, metrics = run(jobs, scheduler, validator=checker)
        assert checker.violations == []
        assert checker.total_checks > 0
        for job in jobs:
            assert job.is_done

    @given(jobs=workloads(max_jobs=4, allow_dags=True))
    def test_dag_streams_respect_prerequisites(self, jobs):
        checker = InvariantChecker()
        run(jobs, "RR", validator=checker)
        # stream_fifo fired for every completed kernel and found nothing.
        completed = sum(j.num_kernels for j in jobs)
        assert checker.checks.get("stream_fifo", 0) >= completed
        assert checker.violations == []


def test_representative_schedulers_are_registered():
    from repro.schedulers.registry import ALL_SCHEDULERS
    assert set(REPRESENTATIVE_SCHEDULERS) <= set(ALL_SCHEDULERS)
