"""Figure 1: many-kernel vs few-kernel characterisation.

The figure plots, per latency-sensitive application, how many kernels a
job launches against its deadline: ML inference jobs are *many-kernel*
with millisecond deadlines; networking/IPA jobs are *few-kernel* with
sub-millisecond deadlines.  The bench regenerates those series from the
workload library and asserts the paper's split.
"""

from __future__ import annotations

import statistics

from conftest import print_block, run_once

from repro.config import GPUConfig
from repro.harness.formatting import format_table
from repro.units import MS, to_us
from repro.workloads.registry import (BENCHMARK_ORDER, BENCHMARKS,
                                      FEW_KERNEL_BENCHMARKS,
                                      MANY_KERNEL_BENCHMARKS, build_workload)


def characterise(num_jobs: int = 64, seed: int = 1):
    gpu = GPUConfig()
    rows = []
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        jobs = build_workload(name, "high", num_jobs=num_jobs, seed=seed,
                              gpu=gpu)
        kernels = [job.num_kernels for job in jobs]
        rows.append({
            "benchmark": name,
            "kind": spec.kind,
            "deadline_us": to_us(spec.deadline),
            "kernels_mean": statistics.mean(kernels),
            "kernels_min": min(kernels),
            "kernels_max": max(kernels),
            "total_wgs_mean": statistics.mean(j.total_wgs for j in jobs),
        })
    return rows


def test_figure1_characterisation(benchmark):
    rows = run_once(benchmark, characterise)
    table = format_table(
        ("benchmark", "kind", "deadline (us)", "kernels/job (mean)",
         "kernels min..max", "WGs/job (mean)"),
        [(r["benchmark"], r["kind"], r["deadline_us"],
          f"{r['kernels_mean']:.1f}",
          f"{r['kernels_min']}..{r['kernels_max']}",
          f"{r['total_wgs_mean']:.1f}") for r in rows])
    print_block("Figure 1: job characteristics (deadline vs kernels/job)",
                table)
    by_name = {r["benchmark"]: r for r in rows}
    # Many-kernel applications launch dozens of kernels per job...
    for name in MANY_KERNEL_BENCHMARKS:
        assert by_name[name]["kernels_mean"] > 10
    # ...while few-kernel applications launch exactly one.
    for name in FEW_KERNEL_BENCHMARKS:
        assert by_name[name]["kernels_max"] == 1
    # Few-kernel deadlines are the aggressive sub-millisecond ones
    # (GMM's 3 ms, set by the isolation-x2 rule, is the one exception).
    assert by_name["IPV6"]["deadline_us"] < 1000
    assert by_name["STEM"]["deadline_us"] < 1000
    assert by_name["CUCKOO"]["deadline_us"] < 1000
    # Many-kernel (RNN) deadlines sit at 7 ms.
    for name in MANY_KERNEL_BENCHMARKS:
        assert by_name[name]["deadline_us"] == to_us(7 * MS)
