"""Cluster router comparison: deadline-aware routing across a GPU fleet.

The PR-8 cluster tier (``repro/cluster/``) puts N independent device
models behind a router that assigns — or sheds — every arriving job.
This bench measures the claims that tier makes, writing
``BENCH_cluster_router.json`` at the repository root:

* **N=1 identity** — a single-device cluster behind the pass-through
  router is bit-identical to a bare ``GPUSystem`` run (outcomes, event
  counts, clocks, admission counters), so the cluster tier costs
  nothing when there is no fleet;
* **router comparison** — round-robin, least-loaded, power-of-two and
  laxity-aware routing compared on a 4-device streamed knee sweep
  (``x0.75 .. x2`` of the per-device SUSTAINED high rate): fleet SLO
  attainment, load/work imbalance and router-tier rejects per policy
  per offered load.  Past the knee the laxity router must stop losing
  to blind spreading — router-tier shedding converts hopeless jobs
  into capacity for feasible ones;
* **parallel speedup** — fanning the per-device simulations over a
  process pool is bit-identical to the serial fold and reports the
  wall-clock ratio (never asserted: shared CI runners cannot flake on
  machine noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_router.py             # full
    PYTHONPATH=src python benchmarks/bench_cluster_router.py --check     # CI: identity only
    PYTHONPATH=src python benchmarks/bench_cluster_router.py --validate  # + invariants
    PYTHONPATH=src python benchmarks/bench_cluster_router.py --soak      # CI preset (reduced sweep)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.cluster import ClusterSystem, router_names
from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.time import to_ms
from repro.workloads.streaming import (SUSTAINED_RATES, build_sustained_jobs,
                                       sustained_fleet_source,
                                       sustained_source)

BENCHMARK = "SUSTAINED"
SCHEDULER = "LAX"
RATE = SUSTAINED_RATES["high"]
SEED = 1

NUM_DEVICES = 4
#: Router policies the comparison covers (pass-through is N=1 only).
POLICIES = ("round-robin", "least-loaded", "power-of-two", "laxity")
#: The knee sweep: multipliers of the per-device SUSTAINED high rate.
KNEE_LEVELS = (0.75, 1.0, 1.5, 2.0)

#: Jobs for the N=1 identity section.
CHECK_JOBS = 1500
#: Jobs for the invariant-checked fleet run (--validate).
VALIDATE_JOBS = 4000
#: Fleet jobs per (policy, rate) cell in the comparison sweep.
FULL_JOBS = 40_000
SOAK_JOBS = 6_000
#: Jobs for the parallel-vs-serial wall-clock section.
SPEEDUP_JOBS = 40_000
SOAK_SPEEDUP_JOBS = 8_000

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_cluster_router.json")


def _bare_signature(metrics, system):
    """Everything a single-device divergence could touch, flattened."""
    admission = getattr(system.policy, "admission", None)
    return ([(o.job_id, o.accepted, o.completion, o.wgs_executed, o.latency)
             for o in metrics.outcomes],
            metrics.end_time, metrics.wg_completions,
            system.sim.events_fired, system.sim.now,
            system.dispatcher.wgs_issued, system.dispatcher.wgs_preempted,
            system.host.commands_sent,
            (admission.accepted, admission.rejected)
            if admission is not None else None)


def _fleet_signature(metrics):
    """Everything a fleet divergence could touch, flattened."""
    return (metrics.lane_sizes, metrics.router_rejected,
            metrics.decision_reasons, metrics.num_jobs,
            metrics.jobs_meeting_deadline, metrics.jobs_rejected,
            tuple(None if d is None else
                  (d["events_fired"], d["now"], d["wgs_issued"],
                   d["commands_sent"], d["admission"])
                  for d in metrics.diagnostics))


def _fleet_run(router, num_jobs, multiplier=1.0, workers=1, validate=False):
    """One streamed fleet run; returns (wall seconds, ClusterMetrics)."""
    fleet = ClusterSystem(SCHEDULER, SimConfig(), num_devices=NUM_DEVICES,
                          router=router, seed=SEED, retire=True,
                          workers=workers, validate=validate)
    source = sustained_fleet_source(NUM_DEVICES, RATE * multiplier,
                                    seed=SEED)
    start = time.perf_counter()
    fleet.submit_stream(source, max_jobs=num_jobs)
    metrics = fleet.run()
    return time.perf_counter() - start, metrics


def identity_check(num_jobs=CHECK_JOBS) -> dict:
    """N=1 pass-through cluster vs bare GPUSystem, finite and streamed."""
    results = {}
    for path in ("finite", "streamed"):
        bare = GPUSystem(make_scheduler(SCHEDULER), SimConfig(),
                         retire=False)
        fleet = ClusterSystem(SCHEDULER, SimConfig(), num_devices=1,
                              router="pass-through", seed=SEED,
                              retire=False)
        if path == "finite":
            bare.submit_workload(
                build_sustained_jobs(num_jobs, RATE, SEED, SimConfig().gpu))
            fleet.submit_workload(
                build_sustained_jobs(num_jobs, RATE, SEED, SimConfig().gpu))
        else:
            bare.submit_stream(sustained_source(RATE, seed=SEED).jobs(),
                               max_jobs=num_jobs)
            fleet.submit_stream(sustained_source(RATE, seed=SEED),
                                max_jobs=num_jobs)
        bare_sig = _bare_signature(bare.run(), bare)
        fleet_metrics = fleet.run()
        fleet_sig = _bare_signature(fleet_metrics.per_device[0],
                                    fleet.devices[0])
        results[path] = fleet_sig == bare_sig
    return {
        "num_jobs": num_jobs,
        "identical": results,
        "all_identical": all(results.values()),
    }


def router_comparison(num_jobs) -> dict:
    """Every policy on every knee level of a streamed 4-device fleet."""
    cells = []
    for multiplier in KNEE_LEVELS:
        for policy in POLICIES:
            _, metrics = _fleet_run(policy, num_jobs, multiplier)
            p99 = metrics.p99_latency_ticks
            cells.append({
                "router": policy,
                "rate_multiplier": multiplier,
                "rate_jobs_per_s": NUM_DEVICES * RATE * multiplier,
                "num_jobs": metrics.num_jobs,
                "fleet_slo_attainment": metrics.slo_attainment,
                "router_rejected": metrics.router_rejected,
                "jobs_rejected": metrics.jobs_rejected,
                "load_imbalance": metrics.load_imbalance,
                "work_imbalance": metrics.work_imbalance,
                "p99_latency_ms": to_ms(p99) if p99 is not None else None,
                "worst_device_p99_ms":
                    to_ms(metrics.worst_device_p99)
                    if metrics.worst_device_p99 is not None else None,
            })
    by_policy = {p: [c for c in cells if c["router"] == p]
                 for p in POLICIES}
    overload = {p: rows[-1]["fleet_slo_attainment"]
                for p, rows in by_policy.items()}
    blind_best = max(v for p, v in overload.items() if p != "laxity")
    return {
        "num_devices": NUM_DEVICES,
        "num_jobs_per_cell": num_jobs,
        "policies": list(POLICIES),
        "rate_multipliers": list(KNEE_LEVELS),
        "cells": cells,
        "overload_slo_by_policy": overload,
        # Past the knee, router-tier shedding must at least match the
        # best blind-spreading policy on fleet SLO attainment.
        "laxity_wins_overload": overload["laxity"] >= blind_best,
    }


def speedup_run(num_jobs) -> dict:
    """Pool vs serial on the laxity fleet: identical results, wall ratio.

    The ratio is reported, never asserted: it is a property of the host
    (``cpus`` records how many cores the pool actually had — on a
    single-core runner the pool pays process overhead for nothing).
    The bit-identity of the two folds is the machine-independent claim.
    """
    serial_secs, serial = _fleet_run("laxity", num_jobs, 1.5, workers=1)
    pool_secs, pooled = _fleet_run("laxity", num_jobs, 1.5,
                                   workers=NUM_DEVICES)
    cpus = os.cpu_count() or 1
    skip_reason = None
    if cpus == 1:
        skip_reason = (f"{cpus} CPU core(s): a process pool cannot "
                       f"beat serial, so no speedup is claimed")
        print("WARNING: single-core host — pool-speedup wall clocks are "
              "not meaningful on this machine; the section is stamped "
              "unreliable_host=true and claims only bit-identity.",
              file=sys.stderr)
    return {
        "num_jobs": num_jobs,
        "workers": NUM_DEVICES,
        "cpus": cpus,
        # A 1-core host cannot produce a trustworthy pool-vs-serial wall
        # clock; consumers must ignore the timing fields when set.
        "unreliable_host": cpus == 1,
        "skip_reason": skip_reason,
        "serial_wall_seconds": serial_secs,
        "parallel_wall_seconds": pool_secs,
        "speedup": None if skip_reason else serial_secs / pool_secs,
        "bit_identical": _fleet_signature(pooled) == _fleet_signature(serial),
    }


def validated_run(num_jobs=VALIDATE_JOBS) -> dict:
    """A streamed fleet under per-device invariant checkers + the audit."""
    _, metrics = _fleet_run("laxity", num_jobs, 1.5, validate=True)
    return {
        "num_jobs": num_jobs,
        "router_rejected": metrics.router_rejected,
        "lane_sizes": list(metrics.lane_sizes),
        "conservation": sum(metrics.lane_sizes) + metrics.router_rejected
        == num_jobs,
    }


def measure(jobs=FULL_JOBS, speedup_jobs=SPEEDUP_JOBS, check_only=False,
            validate=False) -> dict:
    result = {
        "benchmark": BENCHMARK,
        "scheduler": SCHEDULER,
        "num_devices": NUM_DEVICES,
        "per_device_rate_jobs_per_s": RATE,
        "seed": SEED,
        "mode": "check" if check_only else "full",
        # Host facts every bench JSON records; the per-host pool
        # speedup section carries its own skip_reason when a 1-core
        # host voids that (and only that) claim.
        "cpus": os.cpu_count() or 1,
        "skip_reason": None,
        "identity": identity_check(),
    }
    if validate:
        result["invariants"] = validated_run()
    if check_only:
        return result
    result["comparison"] = router_comparison(jobs)
    result["speedup"] = speedup_run(speedup_jobs)
    return result


def write_result(result: dict) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")


def print_result(result: dict) -> None:
    identity = result["identity"]
    print(f"N=1 pass-through identity (n={identity['num_jobs']}): "
          + ", ".join(f"{path}={'ok' if ok else 'DIVERGED'}"
                      for path, ok in identity["identical"].items()))
    if "invariants" in result:
        inv = result["invariants"]
        print(f"invariants (n={inv['num_jobs']}): lanes {inv['lane_sizes']}"
              f" + {inv['router_rejected']} rejected, conservation="
              f"{inv['conservation']}")
    if "comparison" in result:
        comp = result["comparison"]
        rows = [(c["router"], f"x{c['rate_multiplier']}",
                 f"{c['fleet_slo_attainment']:.4f}",
                 str(c["router_rejected"]),
                 f"{c['load_imbalance']:.3f}",
                 f"{c['p99_latency_ms']:.3f}"
                 if c["p99_latency_ms"] is not None else "-")
                for c in comp["cells"]]
        print(format_table(
            ("router", "rate", "fleet SLO", "shed", "imbalance", "p99 ms"),
            rows,
            title=f"{comp['num_devices']}-device router comparison "
                  f"(n={comp['num_jobs_per_cell']} per cell)"))
    if "speedup" in result:
        spd = result["speedup"]
        ratio = ("no speedup claimed" if spd["speedup"] is None
                 else f"{spd['speedup']:.2f}x")
        print(f"process pool: {spd['serial_wall_seconds']:.1f}s serial vs "
              f"{spd['parallel_wall_seconds']:.1f}s on "
              f"{spd['workers']} workers / {spd['cpus']} cpus "
              f"({ratio}, "
              f"bit_identical={spd['bit_identical']})")
        if spd["skip_reason"]:
            print(f"speedup not reported: {spd['skip_reason']}")
    print(f"wrote {os.path.normpath(RESULT_PATH)}")


def failures_of(result: dict, check_only: bool) -> list:
    failures = []
    if not result["identity"]["all_identical"]:
        failures.append("N=1 pass-through cluster diverged from the bare "
                        "GPUSystem run")
    if "invariants" in result and not result["invariants"]["conservation"]:
        failures.append("router conservation violated under validation")
    if check_only:
        return failures
    if not result["comparison"]["laxity_wins_overload"]:
        failures.append("laxity router lost to blind spreading past the "
                        "knee — router-tier shedding miscalibrated")
    if not result["speedup"]["bit_identical"]:
        failures.append("process-pool fleet run diverged from serial")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="N=1 identity only (no sweep, no wall-clock "
                             "numbers)")
    parser.add_argument("--validate", action="store_true",
                        help="also run a streamed fleet under per-device "
                             "invariant checkers and the routing audit")
    parser.add_argument("--soak", action="store_true",
                        help=f"CI preset: {SOAK_JOBS} jobs per sweep cell, "
                             "implies --validate")
    parser.add_argument("--jobs", type=int, default=None,
                        help=f"override jobs per sweep cell "
                             f"(default {FULL_JOBS}, soak {SOAK_JOBS})")
    args = parser.parse_args(argv)

    if args.soak:
        jobs = args.jobs or SOAK_JOBS
        speedup_jobs, validate = SOAK_SPEEDUP_JOBS, True
    else:
        jobs = args.jobs or FULL_JOBS
        speedup_jobs, validate = SPEEDUP_JOBS, args.validate
    result = measure(jobs=jobs, speedup_jobs=speedup_jobs,
                     check_only=args.check, validate=validate)
    if args.soak:
        result["mode"] = "soak"
    write_result(result)
    print_result(result)
    failures = failures_of(result, args.check)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_cluster_router(benchmark):
    """Pytest-benchmark wrapper: identity + invariants + reduced sweep.

    The committed JSON's full-size numbers come from a dedicated run of
    ``main()``; under pytest only the machine-independent claims are
    asserted so shared runners cannot flake.
    """
    from conftest import print_block, run_once

    result = run_once(benchmark, measure, SOAK_JOBS, SOAK_SPEEDUP_JOBS,
                      False, True)
    print_block(
        f"Cluster router comparison on the {NUM_DEVICES}-device "
        f"{BENCHMARK}/{SCHEDULER} fleet",
        json.dumps({k: result[k] for k in ("identity", "invariants")},
                   indent=2))
    assert result["identity"]["all_identical"]
    assert result["invariants"]["conservation"]
    assert result["speedup"]["bit_identical"]


if __name__ == "__main__":
    sys.exit(main())
