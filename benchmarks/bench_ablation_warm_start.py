"""Ablation: cold-start vs offline-profiled (warm) LAX.

LAX learns per-kernel completion rates online (Section 4.2); until the
first completions land, admission falls back to the paper's pessimistic
"use the programmer-provided deadline" rule (Algorithm 1's footnote).
This ablation quantifies what that cold start costs by seeding the Kernel
Profiling Table with offline-profiled isolated rates (the same offline
knowledge SJF/Prophet assume) before the run.

The effect concentrates where jobs are long relative to the run: a 1.5 ms
GMM kernel produces no rate information for the first 1.5 ms, during
which a third of the whole experiment's arrivals come and go.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.core.calibration import profile_workload
from repro.harness.formatting import format_table
from repro.metrics.percentile import geomean
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.workloads.registry import build_workload

BENCHES = ("CUCKOO", "GMM", "STEM", "LSTM")


def run_pair(name: str, num_jobs: int):
    config = SimConfig()
    jobs = build_workload(name, "high", num_jobs=num_jobs, seed=1,
                          gpu=config.gpu)
    cold = GPUSystem(make_scheduler("LAX"), config)
    cold.submit_workload(jobs)
    cold_metrics = cold.run()

    warm_jobs = build_workload(name, "high", num_jobs=num_jobs, seed=1,
                               gpu=config.gpu)
    rates = profile_workload(warm_jobs, config)
    warm = GPUSystem(make_scheduler("LAX", warm_rates=rates), config)
    warm.submit_workload(warm_jobs)
    warm_metrics = warm.run()
    return cold_metrics, warm_metrics


def test_ablation_warm_start(benchmark, num_jobs):
    def sweep():
        return {name: run_pair(name, num_jobs) for name in BENCHES}

    results = run_once(benchmark, sweep)
    rows = []
    for name in BENCHES:
        cold, warm = results[name]
        rows.append((name, cold.jobs_meeting_deadline,
                     warm.jobs_meeting_deadline,
                     cold.jobs_rejected, warm.jobs_rejected))
    print_block(
        "Ablation: cold-start vs offline-profiled LAX "
        "(jobs meeting deadline)",
        format_table(("benchmark", "met (cold)", "met (warm)",
                      "rejected (cold)", "rejected (warm)"), rows))
    cold_score = geomean([max(1, results[n][0].jobs_meeting_deadline)
                          for n in BENCHES])
    warm_score = geomean([max(1, results[n][1].jobs_meeting_deadline)
                          for n in BENCHES])
    # Offline knowledge can only help, and the online-learning penalty is
    # modest (the paper's LAX is fully online).
    assert warm_score >= cold_score * 0.95
    for name in BENCHES:
        cold, warm = results[name]
        assert warm.jobs_meeting_deadline >= cold.jobs_meeting_deadline * 0.8
