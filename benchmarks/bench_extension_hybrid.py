"""Extension study: the LAX+PREMA hybrid Section 6.1.2 proposes.

"A hybrid solution which combines elements of LAX and PREMA could be
interesting future work.  However, this may complicate the design for
relatively small gain..."  This bench builds that hybrid (laxity
estimates + admission from LAX, checkpoint preemption from PREMA, gated
on a laxity gap) and measures both halves of the paper's hypothesis:

* on the paper's homogeneous per-benchmark workloads the gain is indeed
  small — preemption rarely fires and its overhead slightly trails pure
  LAX on many-kernel jobs;
* on a *heterogeneous-deadline* mix (3 ms GMM queries sharing the device
  with 300 us STEM queries) the PREMA element pays off: slack-rich GMM
  workgroups get checkpointed out of the way of tight STEM deadlines.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.harness.summary import (geomean_over_benchmarks, grid_results,
                                   normalized_deadline_grid)
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.workloads.background import merge_workloads
from repro.workloads.registry import BENCHMARK_ORDER, build_workload

SCHEDULERS = ("RR", "PREMA", "LAX", "LAX-PREMA")


def run_homogeneous(num_jobs: int):
    grid = grid_results(BENCHMARK_ORDER, SCHEDULERS, rate_level="high",
                        num_jobs=num_jobs)
    return grid, normalized_deadline_grid(grid, baseline="RR")


def run_heterogeneous(scheduler: str, num_jobs: int):
    config = SimConfig()
    gmm = build_workload("GMM", "medium", num_jobs=max(4, num_jobs // 4),
                         seed=1, gpu=config.gpu)
    stem = build_workload("STEM", "medium", num_jobs=num_jobs, seed=2,
                          gpu=config.gpu)
    merged = merge_workloads(gmm, stem)
    system = GPUSystem(make_scheduler(scheduler), config)
    system.submit_workload(merged)
    metrics = system.run()
    return {
        "GMM": sum(1 for o in metrics.outcomes
                   if o.benchmark == "GMM" and o.met_deadline),
        "STEM": sum(1 for o in metrics.outcomes
                    if o.benchmark == "STEM" and o.met_deadline),
        "total": metrics.jobs_meeting_deadline,
    }


def test_hybrid_on_homogeneous_workloads(benchmark, num_jobs):
    grid, normalized = run_once(benchmark, run_homogeneous, num_jobs)
    rows = []
    for name in BENCHMARK_ORDER:
        rows.append((name, *(
            grid[name][s].metrics.jobs_meeting_deadline
            for s in SCHEDULERS)))
    geomeans = {s: geomean_over_benchmarks(normalized, s)
                for s in SCHEDULERS}
    rows.append(("GEOMEAN vs RR", *(f"{geomeans[s]:.2f}x"
                                    for s in SCHEDULERS)))
    print_block(
        "Hybrid extension, homogeneous workloads (paper Section 6.1.2: "
        "'relatively small gain')",
        format_table(("benchmark", *SCHEDULERS), rows))
    # The hybrid stays close to pure LAX (no large regression) and far
    # above pure PREMA.
    assert geomeans["LAX-PREMA"] >= geomeans["LAX"] * 0.8
    assert geomeans["LAX-PREMA"] > geomeans["PREMA"]


def test_hybrid_wins_heterogeneous_deadline_mix(benchmark, num_jobs):
    def study():
        count = min(num_jobs, 96)
        return {s: run_heterogeneous(s, count) for s in SCHEDULERS}

    results = run_once(benchmark, study)
    rows = [(s, results[s]["GMM"], results[s]["STEM"], results[s]["total"])
            for s in SCHEDULERS]
    print_block(
        "Hybrid extension, heterogeneous mix: 3 ms GMM + 300 us STEM "
        "sharing the device",
        format_table(("scheduler", "GMM met", "STEM met", "total met"),
                     rows))
    # Where deadline slack varies across jobs, checkpointing slack-rich
    # work for tight work completes more jobs overall than pure LAX.
    assert results["LAX-PREMA"]["total"] >= results["LAX"]["total"]
    assert results["LAX-PREMA"]["STEM"] > results["LAX"]["STEM"]
    assert results["LAX-PREMA"]["total"] > results["RR"]["total"]
