"""Figure 7: jobs completed by deadline — CP-extending schedulers.

At the highest arrival rate, compares the schedulers that (like LAX) run
inside the command processor — MLFQ, EDF, SJF, SRF, LJF, PREMA — against
RR and LAX, normalised to RR.  Headline geomeans (Section 6.1.2): SJF
2.46x, SRF 2.54x, EDF 1.5x, LJF 1.24x, PREMA 2.2x, MLFQ 0.85x; LAX beats
the best of them (SJF/SRF) by 1.7x and PREMA by 2.0x.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness.formatting import format_table
from repro.harness.paper_expected import PAPER_GEOMEAN_CLAIMS
from repro.harness.summary import (geomean_over_benchmarks, grid_results,
                                   normalized_deadline_grid)
from repro.workloads.registry import BENCHMARK_ORDER

SCHEDULERS = ("RR", "MLFQ", "EDF", "SJF", "SRF", "LJF", "PREMA", "LAX")


def run_figure7(num_jobs: int):
    grid = grid_results(BENCHMARK_ORDER, SCHEDULERS, rate_level="high",
                        num_jobs=num_jobs)
    return grid, normalized_deadline_grid(grid, baseline="RR")


def test_figure7_cp_schedulers(benchmark, num_jobs):
    grid, normalized = run_once(benchmark, run_figure7, num_jobs)
    rows = []
    for name in BENCHMARK_ORDER:
        rows.append((name, *(
            f"{grid[name][s].metrics.jobs_meeting_deadline}"
            f" ({normalized[name][s]:.2f}x)" for s in SCHEDULERS)))
    geomeans = {s: geomean_over_benchmarks(normalized, s)
                for s in SCHEDULERS}
    rows.append(("GEOMEAN", *(f"{geomeans[s]:.2f}x" for s in SCHEDULERS)))
    print_block(
        "Figure 7: jobs completed by deadline at the high arrival rate,\n"
        "schedulers that extend the CP, normalised to RR",
        format_table(("benchmark", *SCHEDULERS), rows))
    paper = {s: PAPER_GEOMEAN_CLAIMS.get(f"{s}_vs_RR_high")
             for s in SCHEDULERS}
    print("paper geomeans vs RR:", {k: v for k, v in paper.items() if v})

    # Shape: LAX on top; SJF/SRF are the strongest non-laxity CP policies;
    # MLFQ underperforms RR; LJF trails the runtime-aware policies.
    assert geomeans["LAX"] == max(geomeans.values())
    runtime_aware_best = max(geomeans["SJF"], geomeans["SRF"])
    assert runtime_aware_best > geomeans["EDF"]
    assert runtime_aware_best > geomeans["LJF"]
    assert geomeans["MLFQ"] < 1.1
    assert geomeans["SRF"] >= geomeans["LJF"]


def test_figure7_lax_vs_prema_on_fine_grain_tasks(benchmark, num_jobs):
    def ratio():
        grid, normalized = run_figure7(num_jobs)
        lax = geomean_over_benchmarks(normalized, "LAX")
        prema = geomean_over_benchmarks(normalized, "PREMA")
        return lax / prema

    value = run_once(benchmark, ratio)
    print(f"\nLAX vs PREMA geomean ratio: {value:.2f}x "
          f"(paper: {PAPER_GEOMEAN_CLAIMS['LAX_vs_PREMA_high']}x)")
    # The paper's headline: LAX outperforms PREMA on fine-grain tasks.
    assert value > 1.0
