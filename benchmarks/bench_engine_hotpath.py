"""Engine hot-path speedup: optimized engine vs the seed engine.

The PR-4 overhaul (batched WG dispatch, grouped processor-sharing math,
the compacting event heap, the ready-cursor and the laxity memoisation —
see ``repro/sim/modes.py``) claims 2x+ wall-clock on the reference
LSTM/LAX/high cell with **bit-identical** simulated results.  This bench
measures both halves of that claim and writes
``BENCH_engine_hotpath.json`` at the repository root:

* the two engine modes are timed interleaved for ``--repeats`` rounds,
  keeping each mode's fastest run (interleaving defeats CPU-frequency
  drift; the minimum strips scheduler-noise outliers);
* every run's per-job outcome digest (completion time, acceptance,
  WGs executed, deadline verdict), total event count and final clock are
  compared across modes — any mismatch fails the bench;
* the Figure-3 golden completion pins are re-checked under both modes;
* with ``--validate``, the cell is re-run under the invariant checker
  and must sweep clean.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py             # timed
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --check     # CI: identity only
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --validate  # + invariants

``--check`` runs one round per mode and asserts only bit-identity and
the golden pins — never a wall-clock threshold, so shared CI runners
cannot flake on machine noise.  The committed JSON comes from a full
timed run.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
import tracemalloc

from repro.config import SimConfig
from repro.core.calibration import warm_table
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import Job
from repro.sim.kernel import KernelDescriptor
from repro.sim.modes import engine_mode, vectorized_mode
from repro.units import US
from repro.workloads.registry import build_workload

BENCHMARK = "LSTM"
SCHEDULER = "LAX"
RATE = "high"
NUM_JOBS = 64
SEED = 1
REPEATS = 5
TARGET_SPEEDUP = 2.0
RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_engine_hotpath.json")

#: Figure-3 golden pins; source of truth is tests/test_figure3_scenario.py
#: (the regression suite) — keep the two in sync when re-pinning.
GOLDEN_COMPLETIONS = {
    "LAX": {1: 804000, 2: 904000, 3: 914000, 4: 814000, 9: 714000},
    "SJF": {1: 404000, 2: 414000, 3: 504000, 4: 718000, 9: 1106000},
}
GOLDEN_TOLERANCE = 1000
FIGURE3_RATES = {"short": 32 / (100 * US), "long": 32 / (300 * US)}


def _digest(metrics):
    """Per-job outcome fingerprint; any engine divergence lands here."""
    return [(o.job_id, o.accepted, o.completion, o.wgs_executed,
             o.met_deadline)
            for o in metrics.outcomes]


def _timed_run(optimized, validator=None):
    """One timed reference-cell run under the given engine mode.

    ``vectorized_mode`` is pinned off in both arms so the differential
    isolates the PR-4 engine layer: the struct-of-arrays core is a
    separate population-gated layer, measured on the 1280-job cell by
    ``bench_vectorized_core.py``.
    """
    jobs = build_workload(BENCHMARK, RATE, num_jobs=NUM_JOBS, seed=SEED,
                          gpu=SimConfig().gpu)
    with engine_mode(optimized), vectorized_mode(False):
        start = time.perf_counter()
        system = GPUSystem(make_scheduler(SCHEDULER), SimConfig(),
                           validator=validator)
        system.submit_workload(jobs)
        metrics = system.run()
        seconds = time.perf_counter() - start
    return (seconds, _digest(metrics), system.sim.events_fired,
            system.sim.now, system)


def _tick_accounting(system) -> dict:
    """Timer- and rank-level tick counters of one finished LAX run."""
    policy = system.policy
    timer = policy._updater
    stats = policy.tick_stats.as_dict()
    return {
        "timer_ticks_fired": timer.ticks_fired,
        "timer_ticks_elided": timer.ticks_elided,
        "rank_ticks_elided": stats["ticks_elided"],
        "rank_ticks_incremental": stats["ticks_incremental"],
        "walks_reused": stats["walks_reused"],
        "walks_recomputed": stats["walks_recomputed"],
    }


def tracemalloc_peaks() -> dict:
    """Peak tracemalloc bytes of one reference-cell run per engine mode."""
    peaks = {}
    for name, flag in (("optimized", True), ("seed", False)):
        tracemalloc.start()
        try:
            _timed_run(flag)
            peaks[name] = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
    return peaks


def _figure3_jobs():
    def kernel(name, work):
        return KernelDescriptor(name=name, num_wgs=16, threads_per_wg=640,
                                wg_work=work)

    shorts = [Job(job_id=i, benchmark="FIG3", arrival=(i - 1) * 10 * US,
                  deadline=1500 * US,
                  descriptors=[kernel("short", 100 * US)] * 3)
              for i in (1, 2, 3, 4)]
    long_job = Job(job_id=9, benchmark="FIG3", arrival=50 * US,
                   deadline=900 * US,
                   descriptors=[kernel("long", 300 * US)] * 2)
    return shorts + [long_job]


def figure3_pins_hold() -> bool:
    """Golden Figure-3 completion times survive in both engine modes."""
    cells = (("LAX", {"enable_admission": False}), ("SJF", {}))
    for optimized in (True, False):
        with engine_mode(optimized):
            for scheduler, kwargs in cells:
                system = GPUSystem(make_scheduler(scheduler, **kwargs),
                                   SimConfig())
                warm_table(system.profiler, FIGURE3_RATES)
                system.submit_workload(_figure3_jobs())
                metrics = system.run()
                completions = {o.job_id: o.completion
                               for o in metrics.outcomes}
                for job_id, expected in GOLDEN_COMPLETIONS[scheduler].items():
                    if abs(completions[job_id] - expected) > GOLDEN_TOLERANCE:
                        return False
    return True


def validated_run() -> dict:
    """The reference cell under the invariant checker (optimized mode)."""
    from repro.validation import InvariantChecker
    checker = InvariantChecker()
    _timed_run(optimized=True, validator=checker)
    return {"checks": checker.total_checks,
            "violations": len(checker.violations)}


def measure(repeats: int = REPEATS, validate: bool = False,
            memory: bool = True) -> dict:
    """Interleaved best-of-``repeats`` timing of both engine modes."""
    best = {"optimized": math.inf, "seed": math.inf}
    digests, events, finals = {}, {}, {}
    accounting = {}
    for _ in range(repeats):
        for name, flag in (("optimized", True), ("seed", False)):
            seconds, digest, fired, final, system = _timed_run(flag)
            best[name] = min(best[name], seconds)
            digests[name], events[name], finals[name] = digest, fired, final
            if name == "optimized":
                accounting = _tick_accounting(system)
    bit_identical = (digests["optimized"] == digests["seed"]
                     and events["optimized"] == events["seed"]
                     and finals["optimized"] == finals["seed"])
    speedup = best["seed"] / best["optimized"]
    result = {
        "benchmark": BENCHMARK,
        "scheduler": SCHEDULER,
        "rate": RATE,
        "num_jobs": NUM_JOBS,
        "seed": SEED,
        "repeats": repeats,
        # Host facts every bench JSON records: the A/B is
        # single-process, so a 1-core host never invalidates it.
        "cpus": os.cpu_count() or 1,
        "skip_reason": None,
        "optimized_seconds": best["optimized"],
        "seed_seconds": best["seed"],
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": speedup >= TARGET_SPEEDUP,
        "bit_identical": bit_identical,
        # Both timed arms run with the SoA core off — this differential
        # isolates the engine layer (see _timed_run).
        "modes_vectorized": False,
        "events_fired": events["optimized"],
        "final_sim_time": finals["optimized"],
        "tick_accounting": accounting,
        "figure3_pins_ok": figure3_pins_hold(),
    }
    if memory:
        result["tracemalloc_peak_bytes"] = tracemalloc_peaks()
    if validate:
        result["invariants"] = validated_run()
    return result


def write_result(result: dict) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")


def print_result(result: dict) -> None:
    rows = [
        ("seed engine", f"{result['seed_seconds']:.3f}", "1.00x"),
        ("optimized engine", f"{result['optimized_seconds']:.3f}",
         f"{result['speedup']:.2f}x"),
    ]
    print(format_table(("engine", "wall seconds", "speedup"), rows))
    print(f"bit_identical={result['bit_identical']} "
          f"events_fired={result['events_fired']} "
          f"figure3_pins_ok={result['figure3_pins_ok']}")
    if "invariants" in result:
        inv = result["invariants"]
        print(f"invariant checks={inv['checks']} "
              f"violations={inv['violations']}")
    print(f"wrote {os.path.normpath(RESULT_PATH)}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="one round per mode; assert bit-identity and "
                             "golden pins only (no wall-clock threshold)")
    parser.add_argument("--validate", action="store_true",
                        help="also run the cell under the invariant checker")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"timing rounds per mode (default {REPEATS})")
    args = parser.parse_args(argv)

    repeats = 1 if args.check else args.repeats
    result = measure(repeats=repeats, validate=args.validate,
                     memory=not args.check)
    if args.check:
        result["mode"] = "check"
    write_result(result)
    print_result(result)

    failures = []
    if not result["bit_identical"]:
        failures.append("engine modes diverged (results not bit-identical)")
    if not result["figure3_pins_ok"]:
        failures.append("Figure-3 golden completion pins drifted")
    if args.validate and result["invariants"]["violations"]:
        failures.append(f"{result['invariants']['violations']} invariant "
                        "violations")
    if not args.check and not result["meets_target"]:
        failures.append(f"speedup {result['speedup']:.2f}x below the "
                        f"{TARGET_SPEEDUP:.1f}x target")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_engine_hotpath_speedup(benchmark):
    """Pytest-benchmark wrapper: identity is asserted, wall-clock loosely.

    The committed JSON's >= 2x claim comes from a dedicated full run of
    ``main()``; under pytest (possibly on a noisy shared runner) only a
    loose floor is enforced so the suite cannot flake on machine noise.
    """
    from conftest import print_block, run_once

    result = run_once(benchmark, measure, 3)
    write_result(result)
    print_block(
        f"Engine hot-path speedup on the {BENCHMARK}/{SCHEDULER}/{RATE} "
        f"cell (best of {result['repeats']})",
        format_table(("engine", "wall seconds", "speedup"), [
            ("seed engine", f"{result['seed_seconds']:.3f}", "1.00x"),
            ("optimized engine", f"{result['optimized_seconds']:.3f}",
             f"{result['speedup']:.2f}x"),
        ]))
    assert result["bit_identical"]
    assert result["figure3_pins_ok"]
    assert result["speedup"] > 1.2


if __name__ == "__main__":
    sys.exit(main())
