"""Table 5: successful-job throughput, 99-percentile latency, energy.

Regenerates the three sub-tables for all eleven schedulers at the high
arrival rate: (a) successful jobs per second, (b) 99-percentile latency of
completed jobs in milliseconds, (c) energy per successful job in mJ.
Headline shapes (Sections 6.4-6.5): LAX has the best combination — top or
near-top throughput on every benchmark (except STEM, where PREMA wins),
tail latencies bounded near the deadlines because hopeless work is shed,
and the least energy per successful job among CP schedulers.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness.formatting import format_table
from repro.harness.paper_expected import (TABLE5A_THROUGHPUT,
                                          TABLE5B_P99_MS,
                                          TABLE5C_ENERGY_MJ,
                                          TABLE5_SCHEDULERS)
from repro.harness.summary import grid_results
from repro.units import to_ms
from repro.workloads.registry import BENCHMARK_ORDER


def run_table5(num_jobs: int):
    return grid_results(BENCHMARK_ORDER, TABLE5_SCHEDULERS,
                        rate_level="high", num_jobs=num_jobs)


def _paper_vs_measured(grid, extract, paper_table, fmt):
    rows = []
    for name in BENCHMARK_ORDER:
        measured = tuple(fmt(extract(grid[name][s].metrics))
                         for s in TABLE5_SCHEDULERS)
        rows.append((name, *measured))
        paper = tuple(str(paper_table[name][s]) for s in TABLE5_SCHEDULERS)
        rows.append((f"  (paper)", *paper))
    return format_table(("benchmark", *TABLE5_SCHEDULERS), rows)


def test_table5a_successful_throughput(benchmark, num_jobs):
    grid = run_once(benchmark, run_table5, num_jobs)
    table = _paper_vs_measured(
        grid, lambda m: m.successful_throughput, TABLE5A_THROUGHPUT,
        lambda v: f"{v:.0f}")
    print_block("Table 5a: successful job throughput (jobs/s), high rate",
                table)
    wins = 0
    for name in BENCHMARK_ORDER:
        row = {s: grid[name][s].metrics.successful_throughput
               for s in TABLE5_SCHEDULERS}
        if row["LAX"] == max(row.values()):
            wins += 1
        assert row["LAX"] >= row["RR"], name
    # Paper: LAX wins every benchmark except STEM (PREMA).
    assert wins >= 5


def test_table5b_tail_latency(benchmark, num_jobs):
    grid = run_once(benchmark, run_table5, num_jobs)

    def p99_ms(metrics):
        value = metrics.p99_latency_ticks
        return to_ms(int(value)) if value is not None else None

    table = _paper_vs_measured(grid, p99_ms, TABLE5B_P99_MS,
                               lambda v: f"{v:.2f}" if v is not None else "-")
    print_block("Table 5b: 99-percentile latency (ms), high rate", table)
    for name in BENCHMARK_ORDER:
        lax = p99_ms(grid[name]["LAX"].metrics)
        rr = p99_ms(grid[name]["RR"].metrics)
        if lax is None or rr is None:
            continue
        # LAX sheds doomed jobs, so its completed-job tail stays near the
        # deadline while RR's balloons.
        assert lax <= rr * 1.05, name


def test_table5c_energy_per_successful_job(benchmark, num_jobs):
    grid = run_once(benchmark, run_table5, num_jobs)
    table = _paper_vs_measured(
        grid, lambda m: m.energy_per_successful_job_mj, TABLE5C_ENERGY_MJ,
        lambda v: f"{v:.3f}" if v is not None else "-")
    print_block("Table 5c: energy per successful job (mJ), high rate", table)
    for name in BENCHMARK_ORDER:
        lax = grid[name]["LAX"].metrics.energy_per_successful_job_mj
        rr = grid[name]["RR"].metrics.energy_per_successful_job_mj
        assert lax is not None, name
        if rr is not None:
            assert lax <= rr, name


def test_table5_prema_wins_stem(benchmark, num_jobs):
    def stem_row():
        grid = run_table5(num_jobs)
        return {s: grid["STEM"][s].metrics.successful_throughput
                for s in TABLE5_SCHEDULERS}

    row = run_once(benchmark, stem_row)
    print(f"\nSTEM throughput: PREMA {row['PREMA']:.0f}/s, "
          f"LAX {row['LAX']:.0f}/s, RR {row['RR']:.0f}/s "
          "(paper: PREMA 23622, LAX 20954, RR 3937)")
    # The paper's one LAX loss: PREMA's aging + preemption suits STEM.
    # Our model preserves LAX and PREMA both far above RR; PREMA's exact
    # edge depends on preemption-cost details, so assert the weaker shape.
    assert row["LAX"] > row["RR"]
