"""Ablations of LAX's design choices beyond the paper's headline results.

* **Admission off** — how much of LAX's win comes from the Little's-Law
  queuing-delay rejection vs the laxity priority ordering alone.
* **Update period** — the paper empirically chose 100 us for the priority
  update and profiling window; sweep 50/100/200/400 us.
* **CP parse latency** — sensitivity to the 2 us command-processor parse
  assumption (Section 5), swept 1/2/8 us.
"""

from __future__ import annotations

import dataclasses

from conftest import print_block, run_once

from repro.config import OverheadConfig, SimConfig
from repro.harness.experiment import ExperimentSpec, run_cell
from repro.harness.formatting import format_table
from repro.metrics.percentile import geomean
from repro.units import US

BENCHES = ("LSTM", "IPV6", "GMM", "STEM")


def _deadline_counts(num_jobs, config=None, **scheduler_args):
    args = tuple(sorted(scheduler_args.items()))
    counts = {}
    for name in BENCHES:
        spec = ExperimentSpec(benchmark=name, scheduler="LAX",
                              rate_level="high", num_jobs=num_jobs,
                              scheduler_args=args)
        counts[name] = run_cell(
            spec, config=config or SimConfig()).metrics
    return counts


def test_ablation_admission_control(benchmark, num_jobs):
    def sweep():
        with_admission = _deadline_counts(num_jobs)
        without = _deadline_counts(num_jobs, enable_admission=False)
        return with_admission, without

    with_admission, without = run_once(benchmark, sweep)
    rows = []
    for name in BENCHES:
        rows.append((name,
                     with_admission[name].jobs_meeting_deadline,
                     without[name].jobs_meeting_deadline,
                     f"{with_admission[name].wasted_wg_fraction * 100:.0f}%",
                     f"{without[name].wasted_wg_fraction * 100:.0f}%"))
    print_block(
        "Ablation: LAX with vs without queuing-delay admission",
        format_table(("benchmark", "met (admission)", "met (no admission)",
                      "wasted (admission)", "wasted (no admission)"), rows))
    met_with = geomean([max(1, with_admission[b].jobs_meeting_deadline)
                        for b in BENCHES])
    met_without = geomean([max(1, without[b].jobs_meeting_deadline)
                           for b in BENCHES])
    # Admission is a core ingredient: dropping it costs completions and
    # wastes far more of the device.
    assert met_with > met_without
    assert (geomean([max(0.01, with_admission[b].wasted_wg_fraction)
                     for b in BENCHES])
            < geomean([max(0.01, without[b].wasted_wg_fraction)
                       for b in BENCHES]))


def test_ablation_update_period(benchmark, num_jobs):
    def sweep():
        results = {}
        for period_us in (50, 100, 200, 400):
            overheads = dataclasses.replace(
                OverheadConfig(), lax_update_period=period_us * US)
            config = SimConfig(overheads=overheads)
            results[period_us] = _deadline_counts(num_jobs, config=config)
        return results

    results = run_once(benchmark, sweep)
    rows = [(f"{period} us",
             *(results[period][b].jobs_meeting_deadline for b in BENCHES))
            for period in sorted(results)]
    print_block(
        "Ablation: LAX priority-update / profiling-window period\n"
        "(paper empirically chose 100 us)",
        format_table(("update period", *BENCHES), rows))
    score = {period: geomean([
        max(1, results[period][b].jobs_meeting_deadline) for b in BENCHES])
        for period in results}
    # 100 us is competitive with every alternative (within 15%).
    assert score[100] >= 0.85 * max(score.values())


def test_ablation_cp_parse_latency(benchmark, num_jobs):
    def sweep():
        results = {}
        for parse_us in (1, 2, 8):
            overheads = dataclasses.replace(
                OverheadConfig(), cp_parse_period=parse_us * US)
            config = SimConfig(overheads=overheads)
            results[parse_us] = _deadline_counts(num_jobs, config=config)
        return results

    results = run_once(benchmark, sweep)
    rows = [(f"{parse} us",
             *(results[parse][b].jobs_meeting_deadline for b in BENCHES))
            for parse in sorted(results)]
    print_block(
        "Ablation: CP parse latency sensitivity (Section 5 assumes 2 us)",
        format_table(("parse latency", *BENCHES), rows))
    # Slower parsing can only hurt; tight-deadline IPV6 is most exposed.
    assert (results[8]["IPV6"].jobs_meeting_deadline
            <= results[1]["IPV6"].jobs_meeting_deadline)
