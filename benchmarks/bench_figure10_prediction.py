"""Figure 10: LAX's execution-time prediction and priority over time.

For each RNN workload the paper samples one job and plots LAX's predicted
job completion time and assigned priority across the job's lifetime; the
prediction tracks the actual execution time with a mean absolute error of
~8%, and priorities start low-urgency while slack is plentiful, rising
toward P0 as laxity shrinks (most visibly for the heavyweight HYBRID).
"""

from __future__ import annotations

import statistics

from conftest import print_block, run_once

from repro.harness.experiment import ExperimentSpec, run_cell
from repro.harness.formatting import format_table
from repro.harness.paper_expected import PAPER_PREDICTION_MAE
from repro.metrics.tracking import PredictionTracker
from repro.units import to_ms

RNN_BENCHMARKS = ("LSTM", "GRU", "VAN", "HYBRID")


def run_tracked(num_jobs: int):
    """Run LAX on each RNN workload tracking every job's predictions."""
    traces = {}
    for name in RNN_BENCHMARKS:
        tracker = PredictionTracker()
        spec = ExperimentSpec(benchmark=name, scheduler="LAX",
                              rate_level="high", num_jobs=num_jobs)
        run_cell(spec, tracker=tracker)
        traces[name] = [t for t in tracker.traces()
                        if t.actual_completion is not None
                        and len(t.samples) >= 3]
    return traces


def _sample_series(trace, points=8):
    step = max(1, len(trace.samples) // points)
    return trace.samples[::step]


def test_figure10_prediction_tracking(benchmark, num_jobs):
    traces = run_once(benchmark, run_tracked, min(num_jobs, 64))
    rows = []
    full_errors = []
    converged_errors = []
    representative_late = {}
    for name in RNN_BENCHMARKS:
        bench_traces = traces[name]
        assert bench_traces, f"no completed multi-sample jobs for {name}"
        # The figure samples one job; pick the one with the longest trace.
        trace = max(bench_traces, key=lambda t: len(t.samples))
        representative_late[name] = trace.mean_absolute_error(
            tail_fraction=1 / 3)
        full_errors.extend(
            t.mean_absolute_error() for t in bench_traces
            if t.mean_absolute_error() is not None)
        converged_errors.extend(
            t.mean_absolute_error(tail_fraction=1 / 3)
            for t in bench_traces
            if t.mean_absolute_error(tail_fraction=1 / 3) is not None)
        series = " -> ".join(
            f"{to_ms(int(s.predicted_completion)):.2f}"
            for s in _sample_series(trace))
        rows.append((
            name, trace.tag, len(trace.samples),
            f"{to_ms(trace.actual_completion):.2f}", series,
            f"{trace.mean_absolute_error() * 100:.0f}%",
            f"{trace.mean_absolute_error(tail_fraction=1 / 3) * 100:.0f}%"))
    table = format_table(
        ("benchmark", "job", "samples", "actual (ms)",
         "predicted completion over time (ms)", "MAE", "late MAE"),
        rows)
    overall = statistics.mean(full_errors)
    converged = statistics.mean(converged_errors)
    print_block(
        "Figure 10: LAX predicted completion time vs actual "
        f"(paper MAE ~{PAPER_PREDICTION_MAE * 100:.0f}%)\n"
        f"measured over {len(full_errors)} tracked jobs: "
        f"{overall * 100:.0f}% full-series, {converged * 100:.0f}% over "
        "each job's last third (the near-deadline regime the paper's "
        "plots show tracking closely)",
        table)
    # The paper plots one representative (long-running) job per workload;
    # for those, the prediction must have converged onto the actual
    # execution time by the time laxity gets tight — the regime where the
    # scheduling decision bites.
    for name, late_mae in representative_late.items():
        assert late_mae < 0.25, (name, late_mae)
    # And population-wide, the near-deadline error beats the early error.
    assert converged < overall


def test_figure10_priority_rises_as_slack_shrinks(benchmark, num_jobs):
    traces = run_once(benchmark, run_tracked, min(num_jobs, 64))
    improving = 0
    total = 0
    for name in RNN_BENCHMARKS:
        for trace in traces[name]:
            finite = [s.priority for s in trace.samples
                      if s.priority != float("inf")]
            if len(finite) < 3:
                continue
            total += 1
            # Priority value shrinks (urgency grows) over the job's life.
            early = statistics.mean(finite[:max(1, len(finite) // 3)])
            late = statistics.mean(finite[-max(1, len(finite) // 3):])
            if late <= early:
                improving += 1
    assert total > 0
    print(f"\npriority urgency increased over time for {improving}/{total} "
          "tracked jobs")
    assert improving / total > 0.6
