"""Extension study: co-locating deadline work with best-effort batch jobs.

Not one of the paper's headline experiments, but a direct test of its
Section 5.2 claim — "LAX does not affect latency-insensitive applications
because the programmer does not provide a deadline for them" — and of the
datacenter scenario the introduction motivates: a GPU serving
sub-millisecond STEM queries while training-style background jobs soak up
leftover capacity.

Measured: the STEM deadline-success rate with and without co-located
background work, under RR and LAX.  Under LAX the background jobs rank at
infinite laxity, so the deadline work should barely notice them; under
deadline-blind RR the background workgroups trample the 300 us queries.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.workloads.background import (build_background_jobs,
                                        merge_workloads)
from repro.workloads.registry import build_workload

SCHEDULERS = ("RR", "EDF", "LAX")


def run_mix(scheduler: str, num_jobs: int, with_background: bool):
    config = SimConfig()
    streams = [build_workload("STEM", "medium", num_jobs=num_jobs, seed=1,
                              gpu=config.gpu)]
    if with_background:
        streams.append(build_background_jobs(
            max(2, num_jobs // 8), 2000, seed=7, gpu=config.gpu))
    merged = merge_workloads(*streams)
    system = GPUSystem(make_scheduler(scheduler), config)
    system.submit_workload(merged)
    metrics = system.run()
    stem = [o for o in metrics.outcomes if o.benchmark == "STEM"]
    background = [o for o in metrics.outcomes
                  if o.benchmark == "BACKGROUND"]
    return {
        "stem_met": sum(1 for o in stem if o.met_deadline),
        "stem_total": len(stem),
        "bg_done": sum(1 for o in background if o.completion is not None),
        "bg_total": len(background),
    }


def run_study(num_jobs: int):
    results = {}
    for scheduler in SCHEDULERS:
        results[scheduler] = {
            "alone": run_mix(scheduler, num_jobs, with_background=False),
            "mixed": run_mix(scheduler, num_jobs, with_background=True),
        }
    return results


def test_colocation_preserves_deadline_work_under_lax(benchmark, num_jobs):
    count = min(num_jobs, 96)
    results = run_once(benchmark, run_study, count)
    rows = []
    for scheduler in SCHEDULERS:
        alone = results[scheduler]["alone"]
        mixed = results[scheduler]["mixed"]
        rows.append((
            scheduler,
            f"{alone['stem_met']}/{alone['stem_total']}",
            f"{mixed['stem_met']}/{mixed['stem_total']}",
            f"{mixed['bg_done']}/{mixed['bg_total']}"))
    print_block(
        "Co-location: STEM (300 us deadlines) with best-effort batch jobs",
        format_table(("scheduler", "STEM met (alone)", "STEM met (mixed)",
                      "background finished"), rows))
    lax = results["LAX"]
    rr = results["RR"]
    # LAX: background work consumes real capacity but, issued backfill-
    # only, costs a bounded fraction of the deadline hits and still
    # completes (it is never rejected).
    assert lax["mixed"]["stem_met"] >= int(lax["alone"]["stem_met"] * 0.6)
    assert lax["mixed"]["bg_done"] == lax["mixed"]["bg_total"]
    # And LAX degrades less than deadline-blind RR when mixing.
    lax_drop = lax["alone"]["stem_met"] - lax["mixed"]["stem_met"]
    rr_drop = rr["alone"]["stem_met"] - rr["mixed"]["stem_met"]
    assert lax["mixed"]["stem_met"] >= rr["mixed"]["stem_met"]
    assert lax_drop <= max(rr_drop, lax["alone"]["stem_met"] // 3)
