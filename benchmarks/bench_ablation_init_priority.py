"""Ablation (paper footnote 2): LAX's initial job priority.

The paper initialises every accepted job at the *highest* priority;
initialising at the lowest priority degraded performance by ~10% and
running an initial laxity estimate on arrival by ~1%.  The bench sweeps
the three modes over the RNN workloads at the high arrival rate.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness.experiment import ExperimentSpec, run_cell
from repro.harness.formatting import format_table
from repro.metrics.percentile import geomean

MODES = ("highest", "lowest", "estimate")
BENCHES = ("LSTM", "GRU", "VAN", "HYBRID")


def run_sweep(num_jobs: int):
    results = {}
    for mode in MODES:
        per_bench = {}
        for name in BENCHES:
            spec = ExperimentSpec(
                benchmark=name, scheduler="LAX", rate_level="high",
                num_jobs=num_jobs,
                scheduler_args=(("init_priority", mode),))
            per_bench[name] = run_cell(spec).metrics.jobs_meeting_deadline
        results[mode] = per_bench
    return results


def test_ablation_initial_priority(benchmark, num_jobs):
    results = run_once(benchmark, run_sweep, num_jobs)
    rows = [(mode, *(results[mode][b] for b in BENCHES),
             f"{geomean([max(1, results[mode][b]) for b in BENCHES]):.1f}")
            for mode in MODES]
    print_block(
        "Footnote 2 ablation: LAX initial priority mode\n"
        "(paper: lowest-priority init costs ~10%, estimate init ~1%)",
        format_table(("init mode", *BENCHES, "geomean"), rows))
    score = {mode: geomean([max(1, results[mode][b]) for b in BENCHES])
             for mode in MODES}
    # Highest-priority init is never substantially worse than either
    # alternative (the paper found it strictly best).
    assert score["highest"] >= 0.9 * score["lowest"]
    assert score["highest"] >= 0.9 * score["estimate"]
