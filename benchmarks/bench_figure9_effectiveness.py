"""Figure 9: scheduling effectiveness (useful vs wasted workgroups).

Plots, per scheduler at the high arrival rate, the percentage of completed
WGs that belong to jobs meeting their deadlines.  Paper geomeans of the
*wasted* fraction: deadline-blind RR/BAT squander 67-71% of the device,
PRO 65%, LJF 56%, SJF/SRF 41/38%, BAY 27%, and LAX — whose queuing-delay
model refuses doomed work — only 22%.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness.formatting import format_table
from repro.harness.paper_expected import PAPER_WASTED_WORK
from repro.harness.summary import grid_results, wasted_work_by_scheduler
from repro.workloads.registry import BENCHMARK_ORDER

SCHEDULERS = ("RR", "BAT", "BAY", "PRO", "MLFQ", "EDF", "SJF", "SRF",
              "LJF", "PREMA", "LAX")


def run_figure9(num_jobs: int):
    grid = grid_results(BENCHMARK_ORDER, SCHEDULERS, rate_level="high",
                        num_jobs=num_jobs)
    return grid, wasted_work_by_scheduler(grid)


def test_figure9_scheduling_effectiveness(benchmark, num_jobs):
    grid, wasted = run_once(benchmark, run_figure9, num_jobs)
    rows = []
    for name in BENCHMARK_ORDER:
        rows.append((name, *(
            f"{grid[name][s].metrics.effective_wg_fraction * 100:.0f}%"
            for s in SCHEDULERS)))
    rows.append(("GEOMEAN wasted",
                 *(f"{wasted[s] * 100:.0f}%" for s in SCHEDULERS)))
    paper_row = tuple(
        f"{PAPER_WASTED_WORK[s] * 100:.0f}%" if s in PAPER_WASTED_WORK
        else "-" for s in SCHEDULERS)
    rows.append(("paper wasted", *paper_row))
    print_block(
        "Figure 9: % of completed WGs inside deadline-meeting jobs\n"
        "(last rows: geomean wasted fraction, measured vs paper)",
        format_table(("benchmark", *SCHEDULERS), rows))

    # Shape: LAX wastes the least work of all schedulers; the deadline-
    # blind baselines waste the most.
    assert wasted["LAX"] == min(wasted.values())
    assert wasted["RR"] > 0.5
    assert wasted["BAT"] > 0.5
    assert wasted["LAX"] < 0.35
    # Runtime-aware triage (SJF/SRF) wastes less than deadline-blind RR.
    assert wasted["SJF"] < wasted["RR"]
    assert wasted["SRF"] < wasted["RR"]
