"""Figure 8: is CPU-side LAX scheduling sufficient?

Compares the three laxity-aware implementations at the high arrival rate,
normalised to LAX-SW (software-only): LAX-CPU (user-level priority API)
recovers most of the benefit (paper: 1.5x over LAX-SW) and full CP
integration recovers the rest (paper: 1.7x).  Section 6.1.3 also reports
LAX-SW completing 1.8x more jobs than BAY — laxity + the queuing-delay
model improve on the state of the art even without hardware support —
with BAY ahead on the >1 ms many-kernel workloads and LAX-SW far ahead on
the sub-millisecond few-kernel ones.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness.formatting import format_table
from repro.harness.paper_expected import PAPER_GEOMEAN_CLAIMS
from repro.harness.summary import (geomean_over_benchmarks, grid_results,
                                   normalized_deadline_grid)
from repro.workloads.registry import (BENCHMARK_ORDER,
                                      FEW_KERNEL_BENCHMARKS)

VARIANTS = ("LAX-SW", "LAX-CPU", "LAX")


def run_figure8(num_jobs: int):
    grid = grid_results(BENCHMARK_ORDER, VARIANTS + ("BAY",),
                        rate_level="high", num_jobs=num_jobs)
    return grid, normalized_deadline_grid(grid, baseline="LAX-SW")


def test_figure8_lax_variants(benchmark, num_jobs):
    grid, normalized = run_once(benchmark, run_figure8, num_jobs)
    rows = []
    for name in BENCHMARK_ORDER:
        rows.append((name, *(
            f"{grid[name][s].metrics.jobs_meeting_deadline}"
            f" ({normalized[name][s]:.2f}x)" for s in VARIANTS)))
    geomeans = {s: geomean_over_benchmarks(normalized, s) for s in VARIANTS}
    rows.append(("GEOMEAN", *(f"{geomeans[s]:.2f}x" for s in VARIANTS)))
    print_block(
        "Figure 8: laxity-aware variants, normalised to LAX-SW",
        format_table(("benchmark", *VARIANTS), rows))
    print(f"paper: LAX-CPU {PAPER_GEOMEAN_CLAIMS['LAX-CPU_vs_LAX-SW_high']}x,"
          f" LAX {PAPER_GEOMEAN_CLAIMS['LAX_vs_LAX-SW_high']}x vs LAX-SW")
    # Shape: the full-CP variant is the best laxity implementation, and
    # software-only LAX-SW is the weakest of the three.
    assert geomeans["LAX"] >= geomeans["LAX-CPU"] * 0.95
    assert geomeans["LAX"] > geomeans["LAX-SW"]
    assert geomeans["LAX-CPU"] >= geomeans["LAX-SW"]


def test_figure8_lax_sw_vs_bay(benchmark, num_jobs):
    def ratios():
        grid, _ = run_figure8(num_jobs)
        per_benchmark = {}
        for name in BENCHMARK_ORDER:
            sw = grid[name]["LAX-SW"].metrics.jobs_meeting_deadline
            bay = grid[name]["BAY"].metrics.jobs_meeting_deadline
            per_benchmark[name] = (sw, bay)
        return per_benchmark

    per_benchmark = run_once(benchmark, ratios)
    rows = [(name, sw, bay) for name, (sw, bay) in per_benchmark.items()]
    print_block(
        "Section 6.1.3: LAX-SW vs BAY (jobs completed by deadline)\n"
        f"paper geomean: LAX-SW {PAPER_GEOMEAN_CLAIMS['LAX-SW_vs_BAY_high']}x"
        " more than BAY",
        format_table(("benchmark", "LAX-SW", "BAY"), rows))
    # LAX-SW's accurate queuing-delay model wins the few-kernel,
    # sub-millisecond workloads (the paper's key claim for this figure).
    for name in FEW_KERNEL_BENCHMARKS:
        sw, bay = per_benchmark[name]
        assert sw >= bay, name
