"""Telemetry overhead: wall-clock cost of the observability layer.

Runs the same LSTM/LAX/high cell with (a) no telemetry, (b) the
``--emit-telemetry`` default (decision events on, WG events off),
(c) the streaming JSONL sink, (d) windowed metrics plus the live SLO
monitor and (e) the full WG-level trace, and writes the comparison to
``BENCH_telemetry_overhead.json`` at the repository root.  Targets: the
decision-event mode stays under 10 % wall-clock overhead vs no
telemetry, and the streaming modes (JSONL sink, windowed+monitor) under
5 % vs the in-memory default they replace — ``overhead_vs_default``
isolates the cost of the sink swap / windowing from the cost of
collecting the events at all.  WG events are the documented expensive
option and are only reported.

Modes are timed in interleaved round-robin order for ``REPEATS`` rounds
on freshly built (identical, seeded) workloads, keeping each mode's
fastest run: interleaving stops CPU frequency drift from biasing
whichever mode happens to run later, and the minimum strips
scheduler-noise outliers from a CPU-bound measurement.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import tempfile
import time

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.telemetry import TelemetryHub
from repro.units import MS
from repro.workloads.registry import build_workload

REPEATS = 7
TARGET_OVERHEAD = 0.10
STREAM_TARGET_OVERHEAD = 0.05
STREAMING_MODES = ("jsonl_stream", "windowed_slo")
RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_telemetry_overhead.json")


def _timed_run(num_jobs: int, hub):
    """One timed run; returns (seconds, outcome digest)."""
    jobs = build_workload("LSTM", "high", num_jobs=num_jobs, seed=1,
                          gpu=SimConfig().gpu)
    start = time.perf_counter()
    system = GPUSystem(make_scheduler("LAX"), SimConfig(), telemetry=hub)
    system.submit_workload(jobs)
    metrics = system.run()
    seconds = time.perf_counter() - start
    digest = [(o.job_id, o.accepted, o.completion, o.wgs_executed)
              for o in metrics.outcomes]
    return seconds, digest


def measure_overhead(num_jobs: int) -> dict:
    scratch = tempfile.mkdtemp(prefix="bench-telemetry-")
    factories = (
        ("off", lambda tag: None),
        ("decision_events", lambda tag: TelemetryHub()),
        ("jsonl_stream", lambda tag: TelemetryHub(
            sink="jsonl", sink_dir=os.path.join(scratch, tag))),
        ("windowed_slo", lambda tag: TelemetryHub(
            window=2 * MS, slo_monitor=True)),
        ("wg_events", lambda tag: TelemetryHub(wg_events=True)))
    best = {name: math.inf for name, _ in factories}
    digests = {}
    try:
        for round_index in range(REPEATS):
            for name, make_hub in factories:
                hub = make_hub(f"{name}-{round_index}")
                seconds, digest = _timed_run(num_jobs, hub)
                if hub is not None:
                    hub.close()
                best[name] = min(best[name], seconds)
                digests[name] = digest
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    for name in best:
        assert digests[name] == digests["off"], \
            f"{name} telemetry changed results"
    baseline = best.pop("off")
    default = best["decision_events"]
    modes = {name: {
        "seconds": seconds,
        "overhead_fraction": seconds / baseline - 1.0,
    } for name, seconds in best.items()}
    for name in STREAMING_MODES:
        modes[name]["overhead_vs_default"] = \
            best[name] / default - 1.0
    return {
        "benchmark": "LSTM",
        "scheduler": "LAX",
        "rate": "high",
        "num_jobs": num_jobs,
        "repeats": REPEATS,
        # Host facts every bench JSON records: the overhead ratio is
        # single-process, so a 1-core host never invalidates it.
        "cpus": os.cpu_count() or 1,
        "skip_reason": None,
        "baseline_seconds": baseline,
        "modes": modes,
        "target_overhead_fraction": TARGET_OVERHEAD,
        "within_target":
            modes["decision_events"]["overhead_fraction"] < TARGET_OVERHEAD,
        "streaming_target_overhead_fraction": STREAM_TARGET_OVERHEAD,
        "streaming_within_target": all(
            modes[name]["overhead_vs_default"] < STREAM_TARGET_OVERHEAD
            for name in STREAMING_MODES),
    }


def test_telemetry_overhead(benchmark, num_jobs):
    result = run_once(benchmark, measure_overhead, num_jobs)
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")
    rows = [("off (baseline)", f"{result['baseline_seconds']:.3f}",
             "-", "-")]
    for name, mode in result["modes"].items():
        versus_default = mode.get("overhead_vs_default")
        rows.append((name, f"{mode['seconds']:.3f}",
                     f"{mode['overhead_fraction'] * 100:+.1f}%",
                     f"{versus_default * 100:+.1f}%"
                     if versus_default is not None else "-"))
    print_block(
        "Telemetry overhead on the LSTM/LAX/high cell "
        f"(best of {REPEATS}; target < {TARGET_OVERHEAD:.0%} for "
        f"decision events, < {STREAM_TARGET_OVERHEAD:.0%} vs default "
        "for streaming modes)",
        format_table(("mode", "wall seconds", "vs off", "vs default"),
                     rows))
    print(f"wrote {os.path.normpath(RESULT_PATH)}")

    # The default --emit-telemetry configuration must stay cheap, and
    # the streaming sink/window modes must stay close to it.  Bounds
    # are much looser than the recorded targets because shared-CI boxes
    # measure telemetry-attached runs 10-20 % slower than idle ones;
    # the JSON records the measured values.
    assert result["modes"]["decision_events"]["overhead_fraction"] < 0.35
    for name in STREAMING_MODES:
        assert result["modes"][name]["overhead_vs_default"] < 0.15, name
