"""Telemetry overhead: wall-clock cost of the observability layer.

Runs the same LSTM/LAX/high cell with (a) no telemetry, (b) the
``--emit-telemetry`` default (decision events on, WG events off) and
(c) the full WG-level trace, and writes the comparison to
``BENCH_telemetry_overhead.json`` at the repository root.  Target: the
decision-event mode stays under 10 % wall-clock overhead; WG events are
the documented expensive option and are only reported.

Modes are timed in interleaved round-robin order for ``REPEATS`` rounds
on freshly built (identical, seeded) workloads, keeping each mode's
fastest run: interleaving stops CPU frequency drift from biasing
whichever mode happens to run later, and the minimum strips
scheduler-noise outliers from a CPU-bound measurement.
"""

from __future__ import annotations

import json
import math
import os
import time

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.telemetry import TelemetryHub
from repro.workloads.registry import build_workload

REPEATS = 3
TARGET_OVERHEAD = 0.10
RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_telemetry_overhead.json")


def _timed_run(num_jobs: int, hub):
    """One timed run; returns (seconds, outcome digest)."""
    jobs = build_workload("LSTM", "high", num_jobs=num_jobs, seed=1,
                          gpu=SimConfig().gpu)
    start = time.perf_counter()
    system = GPUSystem(make_scheduler("LAX"), SimConfig(), telemetry=hub)
    system.submit_workload(jobs)
    metrics = system.run()
    seconds = time.perf_counter() - start
    digest = [(o.job_id, o.accepted, o.completion, o.wgs_executed)
              for o in metrics.outcomes]
    return seconds, digest


def measure_overhead(num_jobs: int) -> dict:
    factories = (
        ("off", lambda: None),
        ("decision_events", lambda: TelemetryHub()),
        ("wg_events", lambda: TelemetryHub(wg_events=True)))
    best = {name: math.inf for name, _ in factories}
    digests = {}
    for _ in range(REPEATS):
        for name, make_hub in factories:
            seconds, digest = _timed_run(num_jobs, make_hub())
            best[name] = min(best[name], seconds)
            digests[name] = digest
    for name in best:
        assert digests[name] == digests["off"], \
            f"{name} telemetry changed results"
    baseline = best.pop("off")
    modes = {name: {
        "seconds": seconds,
        "overhead_fraction": seconds / baseline - 1.0,
    } for name, seconds in best.items()}
    return {
        "benchmark": "LSTM",
        "scheduler": "LAX",
        "rate": "high",
        "num_jobs": num_jobs,
        "repeats": REPEATS,
        "baseline_seconds": baseline,
        "modes": modes,
        "target_overhead_fraction": TARGET_OVERHEAD,
        "within_target":
            modes["decision_events"]["overhead_fraction"] < TARGET_OVERHEAD,
    }


def test_telemetry_overhead(benchmark, num_jobs):
    result = run_once(benchmark, measure_overhead, num_jobs)
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")
    rows = [("off (baseline)", f"{result['baseline_seconds']:.3f}", "-")]
    for name, mode in result["modes"].items():
        rows.append((name, f"{mode['seconds']:.3f}",
                     f"{mode['overhead_fraction'] * 100:+.1f}%"))
    print_block(
        "Telemetry overhead on the LSTM/LAX/high cell "
        f"(best of {REPEATS}; target < {TARGET_OVERHEAD:.0%} for "
        "decision events)",
        format_table(("mode", "wall seconds", "overhead"), rows))
    print(f"wrote {os.path.normpath(RESULT_PATH)}")

    # The default --emit-telemetry configuration must stay cheap.  The
    # bound is looser than the 10% target to keep shared-CI noise from
    # flaking the suite; the JSON records the measured value.
    assert result["modes"]["decision_events"]["overhead_fraction"] < 0.25
