"""Robustness study: do the paper's headline shapes survive seed changes?

Every other bench runs the paper's single-sample methodology (one set of
random arrivals per cell).  This one replicates the central comparison —
LAX vs the round-robin baseline and vs the strongest CP competitor — over
several arrival/shape seeds and checks the ordering is not a seed
artifact.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness import SweepSpec
from repro.harness.formatting import format_table
from repro.harness.replication import compare_sweep, replicate_sweep

SEEDS = (1, 2, 3, 4, 5)
BENCHES = ("LSTM", "IPV6", "GMM", "STEM")


def run_replication(num_jobs: int):
    count = min(num_jobs, 64)
    cells = {name: replicate_sweep(SweepSpec(
                 benchmarks=(name,), schedulers=("LAX",),
                 seeds=SEEDS, num_jobs=count))[0]
             for name in BENCHES}
    duels = {name: compare_sweep(SweepSpec(
                 benchmarks=(name,), schedulers=("LAX", "RR"),
                 seeds=SEEDS, num_jobs=count))
             for name in BENCHES}
    return cells, duels


def test_lax_advantage_is_seed_robust(benchmark, num_jobs):
    cells, duels = run_once(benchmark, run_replication, num_jobs)
    rows = []
    for name in BENCHES:
        cell = cells[name]
        duel = duels[name]
        record = ", ".join(f"s{seed}:{a}v{b}" for seed, a, b in duel["pairs"])
        rows.append((name, cell.deadline_met.describe(),
                     f"{cell.wasted_fraction.mean * 100:.0f}%",
                     f"{duel['wins']:.1f}/{duel['num_seeds']}", record))
    print_block(
        "Seed replication: LAX deadline hits (mean +/- stdev over "
        f"{len(SEEDS)} seeds) and per-seed duel vs RR",
        format_table(("benchmark", "LAX met", "LAX wasted",
                      "wins vs RR", "per-seed (LAX v RR)"), rows))
    for name in BENCHES:
        duel = duels[name]
        # LAX beats or ties RR on every seed, and strictly wins most.
        assert duel["consistent"], name
        assert duel["wins"] >= duel["num_seeds"] - 0.5, name
