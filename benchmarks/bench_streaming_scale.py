"""Streaming-scale soak: a million-job sustained cell at O(live) memory.

The PR-7 streaming subsystem (lazy arrival sources feeding the engine
through a bounded look-ahead window, plus job retirement at terminal
transitions — see ``repro/workloads/streaming.py`` and
``repro/sim/modes.py``) makes three claims this bench measures, writing
``BENCH_streaming_scale.json`` at the repository root:

* **prefix identity** — the lazy stream truncated at N jobs is
  bit-identical (outcomes, event counts, clocks, admission counters) to
  pre-generating the same N jobs as a finite list, and retirement
  changes no derived aggregate, only where the bookkeeping lives;
* **flat memory** — the ``tracemalloc`` peak of a streamed + retired
  run does not grow with run length (a >= 1M-job cell stays within
  1.2x of a 100k-job reference), while the same cell with retirement
  off demonstrably grows;
* **the knee** — sweeping arrival rate over ``x0.5 .. x2.5`` of the
  SUSTAINED high rate on the harness runner charts SLO attainment
  against offered load; attainment must degrade past the knee, which
  the cell is calibrated to place inside the sweep.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming_scale.py             # full (1M jobs)
    PYTHONPATH=src python benchmarks/bench_streaming_scale.py --check     # CI: identity only
    PYTHONPATH=src python benchmarks/bench_streaming_scale.py --validate  # + invariants
    PYTHONPATH=src python benchmarks/bench_streaming_scale.py --soak      # CI soak preset (100k)

``--check`` asserts prefix identity and retirement equivalence only —
never a wall-clock or memory threshold, so shared CI runners cannot
flake on machine noise.  ``--soak`` is the CI soak preset: a 100k-job
cell with the memory pin, the knee sweep at reduced size and the
invariant-checked run, all in a few minutes.  The committed JSON comes
from a full run.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
import tracemalloc

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.modes import retirement_mode
from repro.sim.time import to_ms
from repro.units import SEC
from repro.workloads.registry import benchmark_spec
from repro.workloads.streaming import (SUSTAINED_RATES, build_sustained_jobs,
                                       sustained_source)

BENCHMARK = "SUSTAINED"
SCHEDULER = "LAX"
RATE = SUSTAINED_RATES["high"]
SEED = 1

#: Jobs for the prefix-identity / retirement-equivalence section.
CHECK_JOBS = 2000
#: Jobs for the invariant-checked streamed run (--validate).
VALIDATE_JOBS = 5000
#: The full soak cell and its flat-memory reference.
FULL_JOBS = 1_000_000
FULL_MEM_REF = 100_000
#: The CI soak preset (--soak).
SOAK_JOBS = 100_000
SOAK_MEM_REF = 10_000
#: Flat-memory acceptance: peak(main) <= 1.2x peak(reference).
MEM_RATIO_LIMIT = 1.2
#: Growth demonstration: no-retire peak at N > 2x peak at N/5.
GROWTH_FACTOR = 2.0

#: The knee sweep: multipliers of the SUSTAINED high rate.
KNEE_LEVELS = ("x0.5", "x0.75", "x1", "x1.5", "x2", "x2.5")
KNEE_JOBS = 20_000
SOAK_KNEE_JOBS = 4_000

#: Schedulers the identity section covers: the paper's contribution, a
#: fair-rotation baseline and a hybrid.
IDENTITY_SCHEDULERS = ("LAX", "RR", "LAX-PREMA")

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_streaming_scale.json")


def _streamed_run(num_jobs, retire, scheduler=SCHEDULER, validator=None):
    """One streamed sustained run; returns (wall seconds, metrics, system)."""
    system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                       validator=validator, retire=retire)
    start = time.perf_counter()
    system.submit_stream(sustained_source(RATE, seed=SEED).jobs(),
                         max_jobs=num_jobs)
    metrics = system.run()
    return time.perf_counter() - start, metrics, system


def _finite_run(num_jobs, scheduler=SCHEDULER):
    jobs = build_sustained_jobs(num_jobs, RATE, SEED, SimConfig().gpu)
    system = GPUSystem(make_scheduler(scheduler), SimConfig(), retire=False)
    system.submit_workload(jobs)
    return system.run(), system


def _signature(metrics, system):
    """Everything a streaming divergence could touch, flattened."""
    admission = getattr(system.policy, "admission", None)
    return ([(o.job_id, o.accepted, o.completion, o.wgs_executed, o.latency)
             for o in metrics.outcomes],
            metrics.end_time, metrics.wg_completions,
            system.sim.events_fired, system.sim.now,
            system.dispatcher.wgs_issued, system.dispatcher.wgs_preempted,
            system.host.commands_sent,
            (admission.accepted, admission.rejected)
            if admission is not None else None)


def _aggregates(metrics):
    """The derived metrics retirement must not change exactly.

    p99 is checked separately with a tolerance: past the latency
    reservoir's capacity the retired run's percentile is a sampled
    estimate, exact-by-construction only below it.
    """
    return (metrics.num_jobs, metrics.jobs_meeting_deadline,
            metrics.jobs_rejected, metrics.num_latency_sensitive,
            metrics.wg_completions, metrics.effective_wg_fraction,
            metrics.end_time)


def _p99_close(retired, baseline, tolerance=0.15) -> bool:
    exact = baseline.p99_latency_ticks
    estimate = retired.p99_latency_ticks
    if exact is None or estimate is None:
        return exact == estimate
    return abs(estimate - exact) <= tolerance * exact


def identity_check(num_jobs=CHECK_JOBS) -> dict:
    """Prefix identity per scheduler + retirement aggregate equivalence."""
    per_scheduler = {}
    for scheduler in IDENTITY_SCHEDULERS:
        finite = _signature(*_finite_run(num_jobs, scheduler))
        _, metrics, system = _streamed_run(num_jobs, retire=False,
                                           scheduler=scheduler)
        per_scheduler[scheduler] = _signature(metrics, system) == finite
    _, retired, _ = _streamed_run(num_jobs, retire=True)
    baseline, _ = _finite_run(num_jobs)
    equivalent = (retired.outcomes == []
                  and retired.stream is not None
                  and retired.stream.jobs == num_jobs
                  and _aggregates(retired) == _aggregates(baseline)
                  and _p99_close(retired, baseline))
    return {
        "num_jobs": num_jobs,
        "prefix_identical": per_scheduler,
        "all_identical": all(per_scheduler.values()),
        "retirement_aggregates_equivalent": equivalent,
    }


def memory_pins(num_jobs, ref_jobs) -> dict:
    """Traced peaks: flat with retirement on, growing with it off."""
    def traced_peak(n, retire):
        gc.collect()
        tracemalloc.start()
        try:
            _streamed_run(n, retire=retire)
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    _streamed_run(200, retire=True)  # warmup: one-time allocations
    retired_ref = traced_peak(ref_jobs, True)
    retired_main = traced_peak(num_jobs, True)
    ratio = retired_main / max(retired_ref, 1)
    grow_small = max(2000, ref_jobs // 5)
    unretired_small = traced_peak(grow_small, False)
    unretired_ref = traced_peak(ref_jobs, False)
    return {
        "ref_jobs": ref_jobs,
        "num_jobs": num_jobs,
        "retired_ref_peak_bytes": retired_ref,
        "retired_peak_bytes": retired_main,
        "retired_peak_ratio": ratio,
        "ratio_limit": MEM_RATIO_LIMIT,
        "flat": ratio <= MEM_RATIO_LIMIT,
        "unretired_jobs": [grow_small, ref_jobs],
        "unretired_peak_bytes": [unretired_small, unretired_ref],
        "unretired_grows": unretired_ref > GROWTH_FACTOR * unretired_small,
    }


def throughput_run(num_jobs) -> dict:
    """The headline cell: untraced wall clock of the streamed+retired run."""
    seconds, metrics, system = _streamed_run(num_jobs, retire=True)
    return {
        "num_jobs": num_jobs,
        "wall_seconds": seconds,
        "jobs_per_wall_second": num_jobs / seconds,
        "events_fired": system.sim.events_fired,
        "events_per_job": system.sim.events_fired / num_jobs,
        "sim_span_ms": to_ms(metrics.makespan_ticks),
        "offered_rate_jobs_per_s": RATE,
        "deadline_ratio": metrics.deadline_ratio,
        "jobs_rejected": metrics.jobs_rejected,
        "p99_latency_ms": to_ms(metrics.p99_latency_ticks),
    }


def knee_sweep(num_jobs) -> dict:
    """SLO attainment vs offered load on the harness runner."""
    from repro.harness.runner import Runner
    from repro.harness.spec import RunOptions, SweepSpec
    spec = benchmark_spec(BENCHMARK)
    sweep = SweepSpec(benchmarks=(BENCHMARK,), schedulers=(SCHEDULER,),
                      rate_levels=KNEE_LEVELS, seeds=(SEED,),
                      num_jobs=num_jobs)
    with retirement_mode(True):
        outcome = Runner(workers=1, cache=False).run(sweep, RunOptions())
    outcome.raise_failures()
    rates = []
    for cell, result in outcome.results.items():
        metrics = result.metrics
        p99 = metrics.p99_latency_ticks
        rates.append({
            "level": cell.rate_level,
            "rate_jobs_per_s": spec.rate(cell.rate_level),
            "slo_attainment": metrics.deadline_ratio,
            "rejected_fraction": metrics.jobs_rejected / metrics.num_jobs,
            "p99_latency_ms": to_ms(p99) if p99 is not None else None,
        })
    rates.sort(key=lambda row: row["rate_jobs_per_s"])
    # The knee is visible when attainment degrades across the sweep.
    degradation = rates[0]["slo_attainment"] - rates[-1]["slo_attainment"]
    return {
        "num_jobs_per_rate": num_jobs,
        "scheduler": SCHEDULER,
        "rates": rates,
        "attainment_degrades": degradation > 0.05,
    }


def validated_run(num_jobs=VALIDATE_JOBS) -> dict:
    """A streamed+retired cell under the invariant checker + oracles."""
    from repro.validation import InvariantChecker, audit_run
    checker = InvariantChecker()
    _, metrics, system = _streamed_run(num_jobs, retire=True,
                                       validator=checker)
    failures = audit_run(system, [], metrics)
    summary = checker.summary()
    return {
        "num_jobs": num_jobs,
        "checks": summary["total_checks"],
        "job_retirements": summary["checks"].get("job_retirement", 0),
        "violations": len(summary["violations"]),
        "oracle_failures": failures,
    }


def measure(jobs=FULL_JOBS, mem_ref=FULL_MEM_REF, knee_jobs=KNEE_JOBS,
            check_only=False, validate=False) -> dict:
    result = {
        "benchmark": BENCHMARK,
        "scheduler": SCHEDULER,
        "rate_jobs_per_s": RATE,
        "seed": SEED,
        "mode": "check" if check_only else "full",
        # Host facts every bench JSON records: the streamed cell is
        # single-process, so a 1-core host never invalidates it.
        "cpus": os.cpu_count() or 1,
        "skip_reason": None,
        "identity": identity_check(),
    }
    if validate:
        result["invariants"] = validated_run()
    if check_only:
        return result
    result["throughput"] = throughput_run(jobs)
    result["memory"] = memory_pins(jobs, mem_ref)
    result["knee"] = knee_sweep(knee_jobs)
    return result


def write_result(result: dict) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")


def print_result(result: dict) -> None:
    identity = result["identity"]
    print(f"prefix identity (n={identity['num_jobs']}): "
          + ", ".join(f"{name}={'ok' if ok else 'DIVERGED'}"
                      for name, ok in identity["prefix_identical"].items())
          + f"; retirement equivalent="
            f"{identity['retirement_aggregates_equivalent']}")
    if "invariants" in result:
        inv = result["invariants"]
        print(f"invariants (n={inv['num_jobs']}): {inv['checks']} checks, "
              f"{inv['job_retirements']} retirements, "
              f"{inv['violations']} violations, "
              f"{len(inv['oracle_failures'])} oracle failures")
    if "throughput" in result:
        thr = result["throughput"]
        print(f"sustained cell: {thr['num_jobs']} jobs in "
              f"{thr['wall_seconds']:.1f}s "
              f"({thr['jobs_per_wall_second']:.0f} jobs/s wall, "
              f"{thr['events_per_job']:.2f} events/job, "
              f"SLO {thr['deadline_ratio']:.4f})")
    if "memory" in result:
        mem = result["memory"]
        print(f"memory: retired peak {mem['retired_peak_bytes'] / 1e3:.0f}KB "
              f"at {mem['num_jobs']} jobs vs "
              f"{mem['retired_ref_peak_bytes'] / 1e3:.0f}KB at "
              f"{mem['ref_jobs']} ({mem['retired_peak_ratio']:.2f}x, "
              f"limit {mem['ratio_limit']}x); unretired "
              f"{mem['unretired_peak_bytes'][0] / 1e3:.0f}KB -> "
              f"{mem['unretired_peak_bytes'][1] / 1e3:.0f}KB "
              f"(grows={mem['unretired_grows']})")
    if "knee" in result:
        rows = [(row["level"], f"{row['rate_jobs_per_s']:.0f}",
                 f"{row['slo_attainment']:.4f}",
                 f"{row['rejected_fraction']:.4f}",
                 f"{row['p99_latency_ms']:.3f}"
                 if row["p99_latency_ms"] is not None else "-")
                for row in result["knee"]["rates"]]
        print(format_table(
            ("rate level", "jobs/s", "SLO attainment", "rejected", "p99 ms"),
            rows,
            title=f"load-vs-SLO knee "
                  f"(n={result['knee']['num_jobs_per_rate']} per rate)"))
    print(f"wrote {os.path.normpath(RESULT_PATH)}")


def failures_of(result: dict, check_only: bool) -> list:
    failures = []
    if not result["identity"]["all_identical"]:
        failures.append("streamed prefix diverged from the finite workload")
    if not result["identity"]["retirement_aggregates_equivalent"]:
        failures.append("retirement changed derived aggregates")
    if "invariants" in result:
        inv = result["invariants"]
        if inv["violations"]:
            failures.append(f"{inv['violations']} invariant violations")
        if inv["oracle_failures"]:
            failures.append(f"oracle failures: {inv['oracle_failures']}")
        if inv["job_retirements"] != inv["num_jobs"]:
            failures.append("not every job was retired exactly once")
    if check_only:
        return failures
    mem = result["memory"]
    if not mem["flat"]:
        failures.append(
            f"retired-run memory not flat: {mem['retired_peak_ratio']:.2f}x "
            f"over the {mem['ref_jobs']}-job reference "
            f"(limit {mem['ratio_limit']}x)")
    if not mem["unretired_grows"]:
        failures.append("retirement-off run failed to demonstrate growth")
    if not result["knee"]["attainment_degrades"]:
        failures.append("knee sweep shows no SLO degradation — "
                        "cell miscalibrated")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="prefix identity + retirement equivalence "
                             "only (no memory or wall-clock thresholds)")
    parser.add_argument("--validate", action="store_true",
                        help="also run a streamed cell under the invariant "
                             "checker and the analytic oracles")
    parser.add_argument("--soak", action="store_true",
                        help=f"CI soak preset: {SOAK_JOBS}-job cell, "
                             f"memory pin vs {SOAK_MEM_REF}, reduced knee "
                             "sweep, implies --validate")
    parser.add_argument("--jobs", type=int, default=None,
                        help=f"override the main cell size "
                             f"(default {FULL_JOBS}, soak {SOAK_JOBS})")
    args = parser.parse_args(argv)

    if args.soak:
        jobs = args.jobs or SOAK_JOBS
        mem_ref, knee_jobs = SOAK_MEM_REF, SOAK_KNEE_JOBS
        validate = True
    else:
        jobs = args.jobs or FULL_JOBS
        mem_ref, knee_jobs = min(FULL_MEM_REF, max(jobs // 10, 1)), KNEE_JOBS
        validate = args.validate
    result = measure(jobs=jobs, mem_ref=mem_ref, knee_jobs=knee_jobs,
                     check_only=args.check, validate=validate)
    if args.soak:
        result["mode"] = "soak"
    write_result(result)
    print_result(result)
    failures = failures_of(result, args.check)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_streaming_scale(benchmark):
    """Pytest-benchmark wrapper: identity + invariants at CI size.

    The committed JSON's million-job numbers come from a dedicated full
    run of ``main()``; under pytest only the machine-independent claims
    are asserted so shared runners cannot flake.
    """
    from conftest import print_block, run_once

    result = run_once(benchmark, measure, SOAK_JOBS, SOAK_MEM_REF,
                      SOAK_KNEE_JOBS, True, True)
    print_block(
        f"Streaming prefix identity on the {BENCHMARK}/{SCHEDULER} cell",
        json.dumps(result["identity"], indent=2))
    assert result["identity"]["all_identical"]
    assert result["identity"]["retirement_aggregates_equivalent"]
    assert result["invariants"]["violations"] == 0
    assert result["invariants"]["oracle_failures"] == []


if __name__ == "__main__":
    sys.exit(main())
