"""Table 1: kernel characterisation of the latency-sensitive benchmarks.

Regenerates the paper's Table 1 rows (kernel name, isolated execution
time, thread count, context size) by *measuring* each kernel's isolated
execution inside the simulator — one single-kernel job on an idle device —
and prints measured vs paper values.  The calibration identity makes these
match by construction; the bench verifies the whole stack (CP latency
included) preserves it.
"""

from __future__ import annotations

import pytest

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.rr import RoundRobinScheduler
from repro.sim.device import GPUSystem
from repro.sim.job import Job
from repro.units import US, to_us
from repro.workloads.kernels import TABLE1_SPECS

#: CP overheads on an isolated launch: inspection + activation (2 us each).
CP_OVERHEAD = 4 * US


def measure_isolated_times():
    """Simulate each Table 1 kernel alone; return per-kernel rows."""
    rows = []
    for spec in TABLE1_SPECS:
        config = SimConfig()
        descriptor = spec.descriptor(config.gpu)
        job = Job(job_id=0, benchmark=spec.name,
                  descriptors=[descriptor], arrival=0,
                  deadline=10_000_000_000)
        system = GPUSystem(RoundRobinScheduler(), config)
        system.submit_workload([job])
        metrics = system.run()
        measured = metrics.outcomes[0].latency - CP_OVERHEAD
        rows.append((spec.name, spec.isolated_us, to_us(measured),
                     descriptor.total_threads, spec.threads,
                     f"{spec.context_kb:.1f} KB"))
    return rows


def test_table1_kernel_characterisation(benchmark):
    rows = run_once(benchmark, measure_isolated_times)
    table = format_table(
        ("kernel", "paper exec (us)", "measured (us)", "threads",
         "paper threads", "context"),
        rows)
    print_block("Table 1: kernel characterisation (paper vs measured)", table)
    for name, paper_us, measured_us, threads, paper_threads, _ in rows:
        assert measured_us == pytest.approx(paper_us, rel=0.02), name
        assert threads == paper_threads, name
