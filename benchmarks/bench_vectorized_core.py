"""Vectorized-core speedup: SoA fast path vs the PR-5 scalar fast path.

``repro.sim.modes.vectorized_mode`` switches the engine's hot state to
struct-of-arrays form (CU occupancy arrays with broadcast min-reduce
capacity, the laxity rank SoA feeding both the tick and Algorithm 1's
admission sum, and the shape-bucketed standing issue order — see
``docs/performance.md``).  The claim is >= 1.5x wall-clock over the
already-optimized PR-5 fast path on the large-fleet cell (>= 1024
co-resident deadline jobs) with **bit-identical** simulated results.
This bench measures both halves and writes ``BENCH_vectorized_core.json``
at the repository root:

* both modes run the fleet cell interleaved for ``--repeats`` rounds
  (everything else — optimized engine, epoch-gated tick — held at the
  defaults), keeping each mode's fastest run;
* every run's per-job outcome digest, the LAX admission counters,
  total event count and final clock go through
  :func:`repro.validation.assert_equivalent` at ``rel_tol=0.0`` — the
  structured records land in the JSON's ``equivalence`` list;
* one traced run per mode compares the full WG-level placement streams;
* the Figure-3 golden completion pins are re-checked under both modes;
* tick accounting (from the LAX policy) and dispatch accounting (the
  bucketed pump's rebuild/pop/park counters) land in the JSON, as does
  the ``tracemalloc`` peak of one run per mode;
* with ``--validate``, a reduced fleet (same generators, CI-sized) is
  re-run under the invariant checker in vectorized mode and must sweep
  clean.

Usage::

    PYTHONPATH=src python benchmarks/bench_vectorized_core.py             # timed
    PYTHONPATH=src python benchmarks/bench_vectorized_core.py --check     # CI: identity only
    PYTHONPATH=src python benchmarks/bench_vectorized_core.py --validate  # + invariants

``--check`` runs one round per mode and asserts bit-identity, the trace
pair, the golden pins and the concurrency floor — never a wall-clock
threshold (and no tracemalloc pass), so shared CI runners cannot flake
on machine noise.  The committed JSON comes from a full timed run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import time
import tracemalloc

from repro.core.calibration import warm_table
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim import modes
from repro.sim.modes import vectorized_mode
from repro.sim.trace import TraceRecorder
from repro.validation import EquivalenceLog
from repro.workloads.fleet import (FLEET_NUM_JOBS, build_fleet_jobs,
                                   fleet_config, fleet_warm_rates,
                                   peak_concurrent_jobs)

from bench_engine_hotpath import figure3_pins_hold

BENCHMARK = "FLEET"
SCHEDULER = "LAX"
NUM_JOBS = FLEET_NUM_JOBS
SEED = 7
REPEATS = 3
TARGET_SPEEDUP = 1.5
MIN_CONCURRENT = 1024
#: Reduced-fleet size for the invariant-checked pass (the checker's
#: per-event occupancy audit is far too slow at 1280 jobs for CI; the
#: same code paths run, just on a smaller cell).
VALIDATE_NUM_JOBS = 320
RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_vectorized_core.json")


def _digest(metrics, system):
    """Everything a vectorized-path divergence could touch, flattened.

    Per-job outcomes (acceptance, completion, WGs, deadline verdict),
    Algorithm 1's admission counters, the event count and the final
    clock.  The SoA paths feed admission verdicts, rank order and WG
    placement, so a single different decision anywhere shows up here.
    """
    admission = system.policy.admission
    return ([dataclasses.astuple(o) for o in metrics.outcomes],
            (admission.accepted, admission.rejected,
             admission.fast_accepted, admission.late_rejected),
            system.sim.events_fired, system.sim.now)


def _fleet_run(vectorized, validator=None, trace=None, num_jobs=NUM_JOBS):
    """One fleet-cell run under the given vectorized-core mode."""
    config = fleet_config()
    jobs = build_fleet_jobs(num_jobs=num_jobs, seed=SEED, gpu=config.gpu)
    rates = fleet_warm_rates(config.gpu)
    with vectorized_mode(vectorized):
        start = time.perf_counter()
        system = GPUSystem(make_scheduler(SCHEDULER), config,
                           validator=validator, trace=trace)
        warm_table(system.profiler, rates)
        system.submit_workload(jobs)
        metrics = system.run()
        seconds = time.perf_counter() - start
    return seconds, metrics, system


def _tick_accounting(system) -> dict:
    """Timer- and rank-level tick counters of one finished run."""
    policy = system.policy
    timer = policy._updater
    stats = policy.tick_stats.as_dict()
    ticks = stats["ticks"]
    return {
        "timer_ticks_fired": timer.ticks_fired,
        "timer_ticks_elided": timer.ticks_elided,
        "rank_ticks": ticks,
        "rank_ticks_elided": stats["ticks_elided"],
        "rank_ticks_incremental": stats["ticks_incremental"],
        "walks_recomputed": stats["walks_recomputed"],
        "walks_reused": stats["walks_reused"],
        "jobs_ranked": stats["jobs_ranked"],
    }


def _dispatch_accounting(system) -> dict:
    """Bucketed-pump counters of one finished vectorized run.

    ``bucket_pops_per_pump`` is the headline: the scalar batched pump
    re-ranks O(active) kernels every pump, the bucketed merge pops
    O(admissions + shapes) heads.
    """
    dispatcher = system.dispatcher
    pumps = dispatcher.bucketed_pumps
    return {
        "wgs_issued": dispatcher.wgs_issued,
        "bucketed_pumps": pumps,
        "bucket_pops": dispatcher.bucket_pops,
        "bucket_pops_per_pump": (dispatcher.bucket_pops / pumps
                                 if pumps else 0.0),
        "bucket_parks": dispatcher.bucket_parks,
        "order_rebuilds": dispatcher.order_rebuilds,
        "order_invalidations": dispatcher.order_invalidations,
    }


def traces_identical(log: EquivalenceLog) -> bool:
    """Full WG-level placement streams match across modes."""
    streams = []
    for flag in (True, False):
        trace = TraceRecorder(wg_events=True)
        _fleet_run(flag, trace=trace)
        streams.append(trace.events)
    # The streams hold hundreds of thousands of events; compare with the
    # C-level ``==`` and record the verdict (leaf-walking them through
    # assert_equivalent would dominate the bench's runtime).
    record = log.check(len(streams[0]) == len(streams[1])
                       and streams[0] == streams[1], True,
                       context="wg_trace_streams_equal")
    return record.exact


def figure3_pins_both_modes() -> bool:
    """Figure-3 golden completion pins survive under both modes."""
    for flag in (True, False):
        with vectorized_mode(flag):
            if not figure3_pins_hold():
                return False
    return True


def tracemalloc_peaks() -> dict:
    """Peak tracemalloc bytes of one fleet run per mode."""
    peaks = {}
    for name, flag in (("vectorized", True), ("pr5", False)):
        tracemalloc.start()
        try:
            _fleet_run(flag)
            peaks[name] = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
    return peaks


def _vectorized_snapshot() -> dict:
    """The full mode-flag state the vectorized arm ran under."""
    with vectorized_mode(True):
        return modes.snapshot()


def validated_run() -> dict:
    """A reduced fleet cell under the invariant checker (vectorized)."""
    from repro.validation import InvariantChecker
    checker = InvariantChecker()
    _fleet_run(True, validator=checker, num_jobs=VALIDATE_NUM_JOBS)
    return {"num_jobs": VALIDATE_NUM_JOBS,
            "checks": checker.total_checks,
            "violations": len(checker.violations)}


def measure(repeats: int = REPEATS, validate: bool = False,
            memory: bool = True) -> dict:
    """Interleaved best-of-``repeats`` timing of both modes."""
    log = EquivalenceLog()
    best = {"vectorized": math.inf, "pr5": math.inf}
    digests, tick_acct, dispatch_acct = {}, {}, {}
    outcomes = events = final = None
    for round_index in range(repeats):
        for name, flag in (("vectorized", True), ("pr5", False)):
            seconds, metrics, system = _fleet_run(flag)
            best[name] = min(best[name], seconds)
            digests[name] = _digest(metrics, system)
            if name == "vectorized":
                tick_acct = _tick_accounting(system)
                dispatch_acct = _dispatch_accounting(system)
                outcomes = metrics.outcomes
                events = system.sim.events_fired
                final = system.sim.now
        log.check(digests["vectorized"], digests["pr5"],
                  context=f"fleet_digest@{NUM_JOBS}/round{round_index}")
    peak = peak_concurrent_jobs(outcomes)
    bit_identical = (digests["vectorized"] == digests["pr5"]
                     and traces_identical(log))
    speedup = best["pr5"] / best["vectorized"]
    result = {
        "benchmark": BENCHMARK,
        "scheduler": SCHEDULER,
        "num_jobs": NUM_JOBS,
        "seed": SEED,
        "repeats": repeats,
        "cpus": os.cpu_count() or 1,
        "skip_reason": None,
        "vectorized_seconds": best["vectorized"],
        "pr5_seconds": best["pr5"],
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": speedup >= TARGET_SPEEDUP,
        "bit_identical": bit_identical,
        "equivalence": log.as_json(),
        "all_exact": log.all_exact,
        "events_fired": events,
        "final_sim_time": final,
        "accepted_jobs": sum(1 for o in outcomes if o.accepted),
        "deadlines_met": sum(1 for o in outcomes if o.met_deadline),
        "peak_concurrent_jobs": peak,
        "min_concurrent_jobs": MIN_CONCURRENT,
        "concurrency_ok": peak >= MIN_CONCURRENT,
        "tick_accounting": tick_acct,
        "dispatch_accounting": dispatch_acct,
        "modes_vectorized": _vectorized_snapshot(),
        "figure3_pins_ok": figure3_pins_both_modes(),
    }
    if memory:
        result["tracemalloc_peak_bytes"] = tracemalloc_peaks()
    if validate:
        result["invariants"] = validated_run()
    return result


def write_result(result: dict) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")


def print_result(result: dict) -> None:
    rows = [
        ("pr5 fast path", f"{result['pr5_seconds']:.3f}", "1.00x"),
        ("vectorized core", f"{result['vectorized_seconds']:.3f}",
         f"{result['speedup']:.2f}x"),
    ]
    print(format_table(("engine core", "wall seconds", "speedup"), rows))
    acct = result["dispatch_accounting"]
    print(f"bit_identical={result['bit_identical']} "
          f"all_exact={result['all_exact']} "
          f"peak_concurrent={result['peak_concurrent_jobs']} "
          f"figure3_pins_ok={result['figure3_pins_ok']}")
    print(f"bucketed pumps={acct['bucketed_pumps']} "
          f"pops/pump={acct['bucket_pops_per_pump']:.1f} "
          f"parks={acct['bucket_parks']} "
          f"rebuilds={acct['order_rebuilds']} "
          f"invalidations={acct['order_invalidations']}")
    if "invariants" in result:
        inv = result["invariants"]
        print(f"invariant checks={inv['checks']} "
              f"violations={inv['violations']}")
    print(f"wrote {os.path.normpath(RESULT_PATH)}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="one round per mode; assert bit-identity, "
                             "golden pins and the concurrency floor only "
                             "(no wall-clock threshold, no tracemalloc)")
    parser.add_argument("--validate", action="store_true",
                        help="also run the cell under the invariant checker")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"timing rounds per mode (default {REPEATS})")
    args = parser.parse_args(argv)

    repeats = 1 if args.check else args.repeats
    result = measure(repeats=repeats, validate=args.validate,
                     memory=not args.check)
    if args.check:
        result["mode"] = "check"
    write_result(result)
    print_result(result)

    failures = []
    if not result["bit_identical"]:
        failures.append("modes diverged (results not bit-identical)")
    if not result["all_exact"]:
        failures.append("an equivalence record consumed float tolerance "
                        "(this path claims bit-identity)")
    if not result["figure3_pins_ok"]:
        failures.append("Figure-3 golden completion pins drifted")
    if not result["concurrency_ok"]:
        failures.append(f"peak concurrency {result['peak_concurrent_jobs']} "
                        f"below the {MIN_CONCURRENT}-job floor")
    if args.validate and result["invariants"]["violations"]:
        failures.append(f"{result['invariants']['violations']} invariant "
                        "violations")
    if not args.check and not result["meets_target"]:
        failures.append(f"speedup {result['speedup']:.2f}x below the "
                        f"{TARGET_SPEEDUP:.1f}x target")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_vectorized_core_speedup(benchmark):
    """Pytest-benchmark wrapper: identity is asserted, wall-clock loosely.

    The committed JSON's >= 1.5x claim comes from a dedicated full run of
    ``main()``; under pytest (possibly on a noisy shared runner) only a
    loose floor is enforced so the suite cannot flake on machine noise.
    """
    from conftest import print_block, run_once

    result = run_once(benchmark, measure, 2, False, False)
    write_result(result)
    print_block(
        f"Vectorized-core speedup on the {BENCHMARK}/{SCHEDULER} cell "
        f"({result['num_jobs']} jobs, best of {result['repeats']})",
        format_table(("engine core", "wall seconds", "speedup"), [
            ("pr5 fast path", f"{result['pr5_seconds']:.3f}", "1.00x"),
            ("vectorized core", f"{result['vectorized_seconds']:.3f}",
             f"{result['speedup']:.2f}x"),
        ]))
    assert result["bit_identical"]
    assert result["all_exact"]
    assert result["figure3_pins_ok"]
    assert result["concurrency_ok"]
    assert result["speedup"] > 1.1


if __name__ == "__main__":
    sys.exit(main())
