"""Shared machinery for the paper-reproduction benches.

Each ``bench_*.py`` module regenerates one table or figure of the paper:
it runs the experiment cells it needs (memoised in-process, so benches that
share cells — Figure 6 / Figure 9 / Table 5 — pay once), prints the same
rows/series the paper reports next to the paper's values, and times the
work through pytest-benchmark.

Every bench runs single-shot (``rounds=1``): an experiment cell is a
deterministic simulation, so repeated timing rounds would only repeat
identical work.

``REPRO_NUM_JOBS`` scales the per-benchmark job count (paper: 128).
"""

from __future__ import annotations

import pytest

from repro.harness.experiment import default_num_jobs


@pytest.fixture(scope="session")
def num_jobs() -> int:
    """Jobs per cell for all benches in this session."""
    return default_num_jobs()


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` once through pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def print_block(title: str, body: str) -> None:
    """Emit a clearly-delimited result block into the captured output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
