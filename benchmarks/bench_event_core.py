"""Event-core speedup: calendar queue + fused paths vs the PR-9 core.

``repro.sim.modes.event_core_mode`` bundles the eight event-core flags
(calendar queue, fusable continuations, counted pump, flattened
admission/tick, slot cache, fused timer drain, live cache, job pool —
see ``docs/performance.md``).  This bench measures the bundle on the
sustained streaming path and writes ``BENCH_event_core.json`` at the
repository root:

* **prefix identity** — LAX, RR and LAX-PREMA streamed cells produce
  bit-identical results (per-job outcome rows, admission counters,
  committed event sequence, clocks) with the event core on vs off, at
  ``rel_tol=0.0`` through :class:`repro.validation.EquivalenceLog`;
* **WG-trace byte identity** — one traced run per mode; the JSON-lines
  encodings of the full WG-level placement streams must hash equal;
* **Figure-3 pins** — the golden completion pins hold under both modes;
* **the headline cell** — the 1M-job SUSTAINED stream (LAX, high rate,
  lookahead 1, retirement on) timed interleaved best-of-``--repeats``
  in both modes; CPU seconds (``time.process_time``) are the headline
  ratio because the committed numbers come from a shared single-core
  host where wall clocks carry scheduler noise;
* **flat memory** — the event-core run's ``tracemalloc`` peak keeps the
  streaming tier's O(live) property (1M-job peak within 1.2x of the
  100k reference);
* **the cluster knee** — the 4-device streamed fleet knee cells run
  under both modes: bit-identical fleet metrics, A/B wall clocks;
* **counters** — ``event_core_stats()`` (wheel vs heap pops, coalesced
  events), the job-pool hit counters, the epoch-gated timer's elided
  ticks and LAX tick stats all land in the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_event_core.py             # full (1M jobs)
    PYTHONPATH=src python benchmarks/bench_event_core.py --check     # CI: identity only
    PYTHONPATH=src python benchmarks/bench_event_core.py --validate  # + invariants
    PYTHONPATH=src python benchmarks/bench_event_core.py --soak      # CI preset (100k)

``--check`` asserts identity, the trace hashes and the golden pins —
never a wall-clock threshold, so shared CI runners cannot flake on
machine noise.  The committed JSON comes from a full run; its timing
sections carry ``unreliable_host`` when the host has one core.
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import hashlib
import json
import os
import sys
import time
import tracemalloc

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim import job_pool, modes
from repro.sim.device import GPUSystem
from repro.sim.modes import event_core_mode
from repro.sim.time import to_ms
from repro.sim.trace import TraceRecorder
from repro.validation import EquivalenceLog
from repro.workloads.streaming import (SUSTAINED_RATES, build_sustained_jobs,
                                       sustained_fleet_source,
                                       sustained_source)

from bench_engine_hotpath import figure3_pins_hold

BENCHMARK = "SUSTAINED"
SCHEDULER = "LAX"
RATE = SUSTAINED_RATES["high"]
SEED = 1
REPEATS = 2

#: The design target (ISSUE) and the asserted regression floor.  The
#: measured ratio is reported honestly; only the floor gates the exit
#: code because the committed numbers come from a noisy one-core host
#: (see ``docs/performance.md`` for the measured breakdown).
TARGET_SPEEDUP = 2.0
SPEEDUP_FLOOR = 1.05

#: Jobs for the per-scheduler identity section.
CHECK_JOBS = 2000
#: Jobs for the WG-trace byte-identity pair (wg_events traces are
#: voluminous; this cell still crosses many bucket boundaries).
TRACE_JOBS = 1200
#: Jobs for the invariant-checked event-core run (--validate).
VALIDATE_JOBS = 5000
#: The headline cell and its flat-memory reference.
FULL_JOBS = 1_000_000
FULL_MEM_REF = 100_000
SOAK_JOBS = 100_000
SOAK_MEM_REF = 10_000
#: Flat-memory acceptance: peak(main) <= 1.2x peak(reference).
MEM_RATIO_LIMIT = 1.2

#: The 4-device cluster knee A/B: per-device rate multipliers.
NUM_DEVICES = 4
KNEE_LEVELS = (1.0, 2.0)
KNEE_JOBS = 20_000
SOAK_KNEE_JOBS = 4_000

#: The paper's contribution, a fair-rotation baseline and the hybrid.
IDENTITY_SCHEDULERS = ("LAX", "RR", "LAX-PREMA")

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_event_core.json")


def _streamed_run(num_jobs, event_core, retire=True, scheduler=SCHEDULER,
                  validator=None):
    """One streamed sustained cell; returns (wall, cpu, metrics, system).

    The mode context wraps construction: ``Simulator`` samples the
    wheeled flag when built, so flipping the flag later has no effect.
    """
    with event_core_mode(event_core):
        wall = time.perf_counter()
        cpu = time.process_time()
        system = GPUSystem(make_scheduler(scheduler), SimConfig(),
                           validator=validator, retire=retire)
        system.submit_stream(sustained_source(RATE, seed=SEED).jobs(),
                             max_jobs=num_jobs)
        metrics = system.run()
        cpu = time.process_time() - cpu
        wall = time.perf_counter() - wall
    return wall, cpu, metrics, system


def _signature(metrics, system):
    """Everything an event-core divergence could touch, flattened.

    Per-job outcome rows (empty under retirement — the retired arm is
    compared on the folded aggregates), the stream aggregates, the
    admission counters, the dispatcher and host counters, the final
    clock and the *committed* event sequence length.  ``events_fired``
    is deliberately absent: fusion elides heap round-trips, so only
    ``events_committed = fired + coalesced`` is mode-invariant.
    """
    admission = getattr(system.policy, "admission", None)
    return ([dataclasses.astuple(o) for o in metrics.outcomes],
            metrics.num_jobs, metrics.jobs_meeting_deadline,
            metrics.jobs_rejected, metrics.num_latency_sensitive,
            metrics.wg_completions, metrics.end_time,
            metrics.p99_latency_ticks,
            system.sim.events_committed, system.sim.now,
            system.dispatcher.wgs_issued, system.dispatcher.wgs_preempted,
            system.host.commands_sent,
            (admission.accepted, admission.rejected,
             admission.fast_accepted, admission.late_rejected)
            if admission is not None else None)


def identity_check(log, num_jobs=CHECK_JOBS) -> dict:
    """Per-scheduler on/off identity + streamed-vs-finite under the core."""
    per_scheduler = {}
    for scheduler in IDENTITY_SCHEDULERS:
        arms = {}
        for flag in (False, True):
            _, _, metrics, system = _streamed_run(
                num_jobs, flag, retire=False, scheduler=scheduler)
            arms[flag] = _signature(metrics, system)
        record = log.check(arms[True], arms[False],
                           context=f"prefix_identity/{scheduler}")
        per_scheduler[scheduler] = record.exact
    # Streamed + retired + event core vs the finite non-retired seed
    # reference: the PR-7 load-bearing property, re-checked with every
    # event-core mechanism engaged (arrival-lane ordering is what makes
    # it hold on the wheel).
    _, _, retired, retired_system = _streamed_run(num_jobs, True)
    with event_core_mode(False):
        finite_system = GPUSystem(make_scheduler(SCHEDULER), SimConfig(),
                                  retire=False)
        finite_system.submit_workload(
            build_sustained_jobs(num_jobs, RATE, SEED, SimConfig().gpu))
        finite = finite_system.run()
    streamed_sig = _signature(retired, retired_system)
    finite_sig = _signature(finite, finite_system)
    # Drop the outcome rows (retirement folds them) and p99 (sampled
    # past the reservoir); everything else must match exactly.
    record = log.check(streamed_sig[1:7] + streamed_sig[8:],
                       finite_sig[1:7] + finite_sig[8:],
                       context="streamed_retired_vs_finite")
    return {
        "num_jobs": num_jobs,
        "prefix_identical": per_scheduler,
        "streamed_retired_matches_finite": record.exact,
        "all_identical": (all(per_scheduler.values()) and record.exact),
    }


def wg_trace_hashes(log, num_jobs=TRACE_JOBS) -> dict:
    """WG-level placement streams hash byte-equal across modes."""
    hashes = {}
    for name, flag in (("event_core", True), ("pr9", False)):
        trace = TraceRecorder(wg_events=True)
        with event_core_mode(flag):
            system = GPUSystem(make_scheduler(SCHEDULER), SimConfig(),
                               trace=trace)
            system.submit_workload(
                build_sustained_jobs(num_jobs, RATE, SEED, SimConfig().gpu))
            system.run()
        digest = hashlib.sha256()
        for event in trace.events:
            digest.update(event.as_json_line().encode("utf-8"))
            digest.update(b"\n")
        hashes[name] = {"events": len(trace.events),
                        "sha256": digest.hexdigest()}
    record = log.check(hashes["event_core"], hashes["pr9"],
                       context="wg_trace_bytes")
    return {"num_jobs": num_jobs, "streams": hashes,
            "identical": record.exact}


def figure3_pins_both_modes() -> bool:
    """Figure-3 golden completion pins survive under both modes."""
    for flag in (True, False):
        with event_core_mode(flag):
            if not figure3_pins_hold():
                return False
    return True


def _event_core_accounting(system) -> dict:
    """Counters of one finished event-core run, for the JSON and the
    bundle report (``lax-sim report --from-bundle``)."""
    policy = system.policy
    timer = policy._updater
    stats = policy.tick_stats.as_dict()
    return {
        "event_core": system.sim.event_core_stats(),
        "job_pool": job_pool.stats(),
        "timer_ticks_fired": timer.ticks_fired,
        "timer_ticks_elided": timer.ticks_elided,
        "rank_ticks": stats["ticks"],
        "rank_ticks_elided": stats["ticks_elided"],
        "wgs_issued": system.dispatcher.wgs_issued,
        "wgs_preempted": system.dispatcher.wgs_preempted,
    }


def throughput_ab(log, num_jobs, repeats) -> dict:
    """Interleaved best-of-``repeats`` timing of the headline cell."""
    best_wall = {"event_core": float("inf"), "pr9": float("inf")}
    best_cpu = dict(best_wall)
    signatures, accounting, last = {}, {}, {}
    for round_index in range(repeats):
        for name, flag in (("event_core", True), ("pr9", False)):
            gc.collect()
            wall, cpu, metrics, system = _streamed_run(num_jobs, flag)
            best_wall[name] = min(best_wall[name], wall)
            best_cpu[name] = min(best_cpu[name], cpu)
            signatures[name] = _signature(metrics, system)
            if name == "event_core":
                accounting = _event_core_accounting(system)
                last = {"metrics": metrics, "system": system}
        log.check(signatures["event_core"], signatures["pr9"],
                  context=f"sustained_digest@{num_jobs}/round{round_index}")
    metrics, system = last["metrics"], last["system"]
    speedup_cpu = best_cpu["pr9"] / best_cpu["event_core"]
    stats = accounting["event_core"]
    return {
        "num_jobs": num_jobs,
        "repeats": repeats,
        "event_core_cpu_seconds": best_cpu["event_core"],
        "pr9_cpu_seconds": best_cpu["pr9"],
        "event_core_wall_seconds": best_wall["event_core"],
        "pr9_wall_seconds": best_wall["pr9"],
        "speedup_cpu": speedup_cpu,
        "speedup_wall": best_wall["pr9"] / best_wall["event_core"],
        "jobs_per_wall_second": num_jobs / best_wall["event_core"],
        "events_committed_per_job": stats["events_committed"] / num_jobs,
        "events_fired_per_job": stats["events_fired"] / num_jobs,
        "coalesced_fraction": (stats["events_coalesced"]
                               / max(stats["events_committed"], 1)),
        "sim_span_ms": to_ms(metrics.makespan_ticks),
        "deadline_ratio": metrics.deadline_ratio,
        "jobs_rejected": metrics.jobs_rejected,
        "accounting": accounting,
    }


def memory_pins(num_jobs, ref_jobs) -> dict:
    """The event-core run keeps the streaming tier's flat-memory pin."""
    def traced_peak(n, flag):
        gc.collect()
        tracemalloc.start()
        try:
            _streamed_run(n, flag)
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    _streamed_run(200, True)  # warmup: one-time allocations
    ref_peak = traced_peak(ref_jobs, True)
    main_peak = traced_peak(num_jobs, True)
    ratio = main_peak / max(ref_peak, 1)
    pr9_ref_peak = traced_peak(ref_jobs, False)
    return {
        "ref_jobs": ref_jobs,
        "num_jobs": num_jobs,
        "event_core_ref_peak_bytes": ref_peak,
        "event_core_peak_bytes": main_peak,
        "peak_ratio": ratio,
        "ratio_limit": MEM_RATIO_LIMIT,
        "flat": ratio <= MEM_RATIO_LIMIT,
        "pr9_ref_peak_bytes": pr9_ref_peak,
    }


def cluster_knee_ab(log, num_jobs) -> dict:
    """The 4-device streamed fleet knee cells, both modes, serial fold.

    The serial fold keeps the A/B in-process so the ambient mode flags
    apply to every device model; the pool arm's bit-identity to serial
    is bench_cluster_router's claim, not re-measured here.
    """
    from repro.cluster import ClusterSystem

    def fleet_cell(flag, multiplier):
        with event_core_mode(flag):
            fleet = ClusterSystem(SCHEDULER, SimConfig(),
                                  num_devices=NUM_DEVICES, router="laxity",
                                  seed=SEED, retire=True, workers=1)
            source = sustained_fleet_source(NUM_DEVICES, RATE * multiplier,
                                            seed=SEED)
            wall = time.perf_counter()
            cpu = time.process_time()
            fleet.submit_stream(source, max_jobs=num_jobs)
            metrics = fleet.run()
            cpu = time.process_time() - cpu
            wall = time.perf_counter() - wall
        return wall, cpu, metrics

    def fleet_signature(metrics):
        return (metrics.lane_sizes, metrics.router_rejected,
                metrics.decision_reasons, metrics.num_jobs,
                metrics.jobs_meeting_deadline, metrics.jobs_rejected)

    cells = []
    identical = True
    for multiplier in KNEE_LEVELS:
        arms = {}
        for name, flag in (("event_core", True), ("pr9", False)):
            gc.collect()
            arms[name] = fleet_cell(flag, multiplier)
        record = log.check(fleet_signature(arms["event_core"][2]),
                           fleet_signature(arms["pr9"][2]),
                           context=f"cluster_knee@x{multiplier}")
        identical = identical and record.exact
        metrics = arms["event_core"][2]
        cells.append({
            "rate_multiplier": multiplier,
            "num_jobs": metrics.num_jobs,
            "fleet_slo_attainment": metrics.slo_attainment,
            "router_rejected": metrics.router_rejected,
            "event_core_cpu_seconds": arms["event_core"][1],
            "pr9_cpu_seconds": arms["pr9"][1],
            "speedup_cpu": arms["pr9"][1] / arms["event_core"][1],
            "bit_identical": record.exact,
        })
    return {
        "num_devices": NUM_DEVICES,
        "router": "laxity",
        "num_jobs_per_cell": num_jobs,
        "cells": cells,
        "all_identical": identical,
    }


def validated_run(num_jobs=VALIDATE_JOBS) -> dict:
    """A streamed event-core cell under the invariant checker + oracles."""
    from repro.validation import InvariantChecker, audit_run
    checker = InvariantChecker()
    _, _, metrics, system = _streamed_run(num_jobs, True, validator=checker)
    failures = audit_run(system, [], metrics)
    summary = checker.summary()
    return {
        "num_jobs": num_jobs,
        "checks": summary["total_checks"],
        "violations": len(summary["violations"]),
        "oracle_failures": failures,
    }


def _event_core_snapshot() -> dict:
    """The full mode-flag state the event-core arm ran under."""
    with event_core_mode(True):
        return modes.snapshot()


def measure(jobs=FULL_JOBS, mem_ref=FULL_MEM_REF, knee_jobs=KNEE_JOBS,
            repeats=REPEATS, check_only=False, validate=False) -> dict:
    cpus = os.cpu_count() or 1
    if cpus == 1 and not check_only:
        print("WARNING: single-core host — wall clocks carry scheduler "
              "noise; the timing sections are stamped "
              "unreliable_host=true and the headline ratio uses CPU "
              "seconds (time.process_time).", file=sys.stderr)
    log = EquivalenceLog()
    result = {
        "benchmark": BENCHMARK,
        "scheduler": SCHEDULER,
        "rate_jobs_per_s": RATE,
        "seed": SEED,
        "mode": "check" if check_only else "full",
        "cpus": cpus,
        "unreliable_host": cpus == 1,
        "skip_reason": None,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_floor": SPEEDUP_FLOOR,
        "modes_event_core": _event_core_snapshot(),
        "identity": identity_check(log),
        "wg_trace": wg_trace_hashes(log),
        "figure3_pins_ok": figure3_pins_both_modes(),
    }
    if validate:
        result["invariants"] = validated_run()
    if not check_only:
        result["throughput"] = throughput_ab(log, jobs, repeats)
        result["throughput"]["meets_target"] = (
            result["throughput"]["speedup_cpu"] >= TARGET_SPEEDUP)
        result["memory"] = memory_pins(jobs, mem_ref)
        result["cluster_knee"] = cluster_knee_ab(log, knee_jobs)
    result["equivalence"] = log.as_json()
    result["all_exact"] = log.all_exact
    result["bit_identical"] = (result["identity"]["all_identical"]
                               and result["wg_trace"]["identical"]
                               and log.all_exact)
    return result


def write_result(result: dict) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")


def print_result(result: dict) -> None:
    identity = result["identity"]
    print(f"prefix identity (n={identity['num_jobs']}): "
          + ", ".join(f"{name}={'ok' if ok else 'DIVERGED'}"
                      for name, ok in identity["prefix_identical"].items())
          + f"; streamed+retired vs finite="
            f"{identity['streamed_retired_matches_finite']}")
    trace = result["wg_trace"]
    print(f"wg trace (n={trace['num_jobs']}): "
          f"{trace['streams']['event_core']['events']} events, "
          f"bytes identical={trace['identical']}; "
          f"figure3_pins_ok={result['figure3_pins_ok']}")
    if "invariants" in result:
        inv = result["invariants"]
        print(f"invariants (n={inv['num_jobs']}): {inv['checks']} checks, "
              f"{inv['violations']} violations, "
              f"{len(inv['oracle_failures'])} oracle failures")
    if "throughput" in result:
        thr = result["throughput"]
        rows = [
            ("pr9 core", f"{thr['pr9_cpu_seconds']:.2f}",
             f"{thr['pr9_wall_seconds']:.2f}", "1.00x"),
            ("event core", f"{thr['event_core_cpu_seconds']:.2f}",
             f"{thr['event_core_wall_seconds']:.2f}",
             f"{thr['speedup_cpu']:.2f}x"),
        ]
        print(format_table(
            ("engine core", "cpu s", "wall s", "cpu speedup"), rows,
            title=f"sustained cell (n={thr['num_jobs']}, best of "
                  f"{thr['repeats']})"))
        stats = thr["accounting"]["event_core"]
        pool = thr["accounting"]["job_pool"]
        print(f"events: {thr['events_committed_per_job']:.2f} committed/job"
              f", {thr['events_fired_per_job']:.2f} fired/job "
              f"({100 * thr['coalesced_fraction']:.1f}% coalesced); "
              f"wheel pops={stats['wheel_pops']} "
              f"pool hits={pool['hits']} recycled={pool['recycled']}")
    if "memory" in result:
        mem = result["memory"]
        print(f"memory: event-core peak {mem['event_core_peak_bytes'] / 1e3:.0f}KB "
              f"at {mem['num_jobs']} jobs vs "
              f"{mem['event_core_ref_peak_bytes'] / 1e3:.0f}KB at "
              f"{mem['ref_jobs']} ({mem['peak_ratio']:.2f}x, "
              f"limit {mem['ratio_limit']}x)")
    if "cluster_knee" in result:
        knee = result["cluster_knee"]
        rows = [(f"x{c['rate_multiplier']}", f"{c['fleet_slo_attainment']:.4f}",
                 f"{c['pr9_cpu_seconds']:.2f}",
                 f"{c['event_core_cpu_seconds']:.2f}",
                 f"{c['speedup_cpu']:.2f}x", str(c["bit_identical"]))
                for c in knee["cells"]]
        print(format_table(
            ("rate", "fleet SLO", "pr9 cpu s", "core cpu s", "speedup",
             "identical"), rows,
            title=f"{knee['num_devices']}-device knee A/B "
                  f"(n={knee['num_jobs_per_cell']} per cell)"))
    print(f"bit_identical={result['bit_identical']} "
          f"all_exact={result['all_exact']}")
    print(f"wrote {os.path.normpath(RESULT_PATH)}")


def failures_of(result: dict, check_only: bool) -> list:
    failures = []
    if not result["identity"]["all_identical"]:
        failures.append("event-core runs diverged from the PR-9 core")
    if not result["wg_trace"]["identical"]:
        failures.append("WG-trace streams are not byte-identical")
    if not result["figure3_pins_ok"]:
        failures.append("Figure-3 golden completion pins drifted")
    if not result["all_exact"]:
        failures.append("an equivalence record consumed float tolerance "
                        "(this path claims bit-identity)")
    if "invariants" in result:
        inv = result["invariants"]
        if inv["violations"]:
            failures.append(f"{inv['violations']} invariant violations")
        if inv["oracle_failures"]:
            failures.append(f"oracle failures: {inv['oracle_failures']}")
    if check_only:
        return failures
    if not result["memory"]["flat"]:
        failures.append(
            f"event-core memory not flat: "
            f"{result['memory']['peak_ratio']:.2f}x over the "
            f"{result['memory']['ref_jobs']}-job reference")
    if not result["cluster_knee"]["all_identical"]:
        failures.append("cluster knee cells diverged across modes")
    if result["throughput"]["speedup_cpu"] < SPEEDUP_FLOOR:
        failures.append(
            f"cpu speedup {result['throughput']['speedup_cpu']:.2f}x "
            f"below the {SPEEDUP_FLOOR:.2f}x regression floor")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="identity, trace hashes and golden pins only "
                             "(no wall-clock or memory sections)")
    parser.add_argument("--validate", action="store_true",
                        help="also run a streamed event-core cell under "
                             "the invariant checker and the oracles")
    parser.add_argument("--soak", action="store_true",
                        help=f"CI preset: {SOAK_JOBS}-job cell, memory pin "
                             f"vs {SOAK_MEM_REF}, reduced knee, implies "
                             "--validate")
    parser.add_argument("--jobs", type=int, default=None,
                        help=f"override the headline cell size "
                             f"(default {FULL_JOBS}, soak {SOAK_JOBS})")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"timing rounds per mode (default {REPEATS})")
    args = parser.parse_args(argv)

    if args.soak:
        jobs = args.jobs or SOAK_JOBS
        mem_ref, knee_jobs, validate = SOAK_MEM_REF, SOAK_KNEE_JOBS, True
    else:
        jobs = args.jobs or FULL_JOBS
        mem_ref = min(FULL_MEM_REF, max(jobs // 10, 1))
        knee_jobs, validate = KNEE_JOBS, args.validate
    result = measure(jobs=jobs, mem_ref=mem_ref, knee_jobs=knee_jobs,
                     repeats=args.repeats, check_only=args.check,
                     validate=validate)
    if args.soak:
        result["mode"] = "soak"
    write_result(result)
    print_result(result)
    failures = failures_of(result, args.check)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_event_core(benchmark):
    """Pytest-benchmark wrapper: identity + invariants at CI size.

    The committed JSON's million-job numbers come from a dedicated full
    run of ``main()``; under pytest only the machine-independent claims
    are asserted so shared runners cannot flake.
    """
    from conftest import print_block, run_once

    result = run_once(benchmark, measure, SOAK_JOBS, SOAK_MEM_REF,
                      SOAK_KNEE_JOBS, 1, False, True)
    print_block(
        f"Event-core identity on the {BENCHMARK}/{SCHEDULER} cell",
        json.dumps(result["identity"], indent=2))
    assert result["identity"]["all_identical"]
    assert result["wg_trace"]["identical"]
    assert result["figure3_pins_ok"]
    assert result["all_exact"]
    assert result["invariants"]["violations"] == 0
    assert result["invariants"]["oracle_failures"] == []


if __name__ == "__main__":
    sys.exit(main())
