"""Scheduler-tick speedup: epoch-gated LAX tick vs the seed tick.

The PR-5 fast path (rank-epoch gating, the ``RemainingTimeCache``, the
standing Job-Table sweep order — see ``repro/sim/modes.py`` and
``docs/performance.md``) claims >= 1.5x wall-clock on a large-fleet cell
(>= 1024 co-resident deadline jobs, where the 100 us LAX tick dominates)
with **bit-identical** simulated results.  This bench measures both
halves of that claim and writes ``BENCH_scheduler_tick.json`` at the
repository root:

* both scheduler-tick modes run the fleet cell interleaved for
  ``--repeats`` rounds on the PR-4 optimized engine, keeping each mode's
  fastest run (interleaving defeats CPU-frequency drift; the minimum
  strips scheduler-noise outliers);
* every run's per-job outcome digest, the LAX admission counters
  (accept/reject/fast/late), total event count and final clock are
  compared across modes — any mismatch fails the bench;
* one traced run per mode compares the full WG-level placement streams;
* the Figure-3 golden completion pins are re-checked under both modes;
* tick accounting (timer ticks fired/elided, rank ticks elided vs
  incremental, WGList walks reused vs recomputed) and the ``tracemalloc``
  peak of one run per mode land in the JSON;
* with ``--validate``, a reduced fleet (same generators, CI-sized — see
  ``VALIDATE_NUM_JOBS``) is re-run under the invariant checker and must
  sweep clean.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_tick.py             # timed
    PYTHONPATH=src python benchmarks/bench_scheduler_tick.py --check     # CI: identity only
    PYTHONPATH=src python benchmarks/bench_scheduler_tick.py --validate  # + invariants

``--check`` runs one round per mode and asserts bit-identity, the trace
pair, the golden pins and the concurrency floor — never a wall-clock
threshold (and no tracemalloc pass), so shared CI runners cannot flake
on machine noise.  The committed JSON comes from a full timed run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import time
import tracemalloc

from repro.core.calibration import warm_table
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.modes import scheduler_tick_mode
from repro.sim.trace import TraceRecorder
from repro.workloads.fleet import (FLEET_NUM_JOBS, build_fleet_jobs,
                                   fleet_config, fleet_warm_rates,
                                   peak_concurrent_jobs)

from bench_engine_hotpath import figure3_pins_hold

BENCHMARK = "FLEET"
SCHEDULER = "LAX"
NUM_JOBS = FLEET_NUM_JOBS
SEED = 7
REPEATS = 3
TARGET_SPEEDUP = 1.5
MIN_CONCURRENT = 1024
#: The invariant checker audits occupancy after every residency change —
#: O(residents/CU) per check — which at 1280 co-resident jobs costs ~15
#: wall-minutes.  The validated pass therefore runs a reduced fleet
#: (same generators, same code paths, ~1 minute); the full cell sweeps
#: clean too, it is just too slow for a CI smoke step.
VALIDATE_NUM_JOBS = 320
RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_scheduler_tick.json")


def _digest(metrics, system):
    """Everything a tick-path divergence could touch, flattened.

    Per-job outcomes (acceptance, completion, WGs, deadline verdict),
    Algorithm 1's admission counters, the event count and the final
    clock.  LAX admission verdicts feed the outcome rows directly, so a
    single different verdict anywhere shows up here.
    """
    admission = system.policy.admission
    return ([dataclasses.astuple(o) for o in metrics.outcomes],
            (admission.accepted, admission.rejected,
             admission.fast_accepted, admission.late_rejected),
            system.sim.events_fired, system.sim.now)


def _fleet_run(gated, validator=None, trace=None, num_jobs=NUM_JOBS):
    """One fleet-cell run under the given scheduler-tick mode."""
    config = fleet_config()
    jobs = build_fleet_jobs(num_jobs=num_jobs, seed=SEED, gpu=config.gpu)
    rates = fleet_warm_rates(config.gpu)
    with scheduler_tick_mode(gated):
        start = time.perf_counter()
        system = GPUSystem(make_scheduler(SCHEDULER), config,
                           validator=validator, trace=trace)
        warm_table(system.profiler, rates)
        system.submit_workload(jobs)
        metrics = system.run()
        seconds = time.perf_counter() - start
    return seconds, metrics, system


def _tick_accounting(system) -> dict:
    """Timer- and rank-level tick counters of one finished run."""
    policy = system.policy
    timer = policy._updater
    stats = policy.tick_stats.as_dict()
    ticks = stats["ticks"]
    return {
        "timer_ticks_fired": timer.ticks_fired,
        "timer_ticks_elided": timer.ticks_elided,
        "rank_ticks": ticks,
        "rank_ticks_elided": stats["ticks_elided"],
        "rank_ticks_incremental": stats["ticks_incremental"],
        "walks_recomputed": stats["walks_recomputed"],
        "walks_reused": stats["walks_reused"],
        "jobs_ranked": stats["jobs_ranked"],
        "jobs_ranked_per_tick": (stats["jobs_ranked"] / ticks
                                 if ticks else 0.0),
        "walks_recomputed_per_tick": (stats["walks_recomputed"] / ticks
                                      if ticks else 0.0),
    }


def traces_identical() -> bool:
    """Full WG-level placement streams match across tick modes."""
    streams = []
    for gated in (True, False):
        trace = TraceRecorder(wg_events=True)
        _fleet_run(gated, trace=trace)
        streams.append(trace.events)
    return streams[0] == streams[1]


def tracemalloc_peaks() -> dict:
    """Peak tracemalloc bytes of one fleet run per tick mode."""
    peaks = {}
    for name, gated in (("gated", True), ("seed", False)):
        tracemalloc.start()
        try:
            _fleet_run(gated)
            peaks[name] = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
    return peaks


def validated_run() -> dict:
    """A reduced fleet cell under the invariant checker (gated mode)."""
    from repro.validation import InvariantChecker
    checker = InvariantChecker()
    _fleet_run(gated=True, validator=checker, num_jobs=VALIDATE_NUM_JOBS)
    return {"num_jobs": VALIDATE_NUM_JOBS,
            "checks": checker.total_checks,
            "violations": len(checker.violations)}


def measure(repeats: int = REPEATS, validate: bool = False,
            memory: bool = True) -> dict:
    """Interleaved best-of-``repeats`` timing of both tick modes."""
    best = {"gated": math.inf, "seed": math.inf}
    digests, accounting = {}, {}
    outcomes = events = final = None
    for _ in range(repeats):
        for name, flag in (("gated", True), ("seed", False)):
            seconds, metrics, system = _fleet_run(flag)
            best[name] = min(best[name], seconds)
            digests[name] = _digest(metrics, system)
            if name == "gated":
                accounting = _tick_accounting(system)
                outcomes = metrics.outcomes
                events = system.sim.events_fired
                final = system.sim.now
    peak = peak_concurrent_jobs(outcomes)
    bit_identical = (digests["gated"] == digests["seed"]
                     and traces_identical())
    speedup = best["seed"] / best["gated"]
    result = {
        "benchmark": BENCHMARK,
        "scheduler": SCHEDULER,
        "num_jobs": NUM_JOBS,
        "seed": SEED,
        "repeats": repeats,
        "gated_seconds": best["gated"],
        "seed_seconds": best["seed"],
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": speedup >= TARGET_SPEEDUP,
        "bit_identical": bit_identical,
        "events_fired": events,
        "final_sim_time": final,
        "accepted_jobs": sum(1 for o in outcomes if o.accepted),
        "deadlines_met": sum(1 for o in outcomes if o.met_deadline),
        "peak_concurrent_jobs": peak,
        "min_concurrent_jobs": MIN_CONCURRENT,
        "concurrency_ok": peak >= MIN_CONCURRENT,
        "tick_accounting": accounting,
        "figure3_pins_ok": figure3_pins_hold(),
    }
    if memory:
        result["tracemalloc_peak_bytes"] = tracemalloc_peaks()
    if validate:
        result["invariants"] = validated_run()
    return result


def write_result(result: dict) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")


def print_result(result: dict) -> None:
    rows = [
        ("seed tick", f"{result['seed_seconds']:.3f}", "1.00x"),
        ("epoch-gated tick", f"{result['gated_seconds']:.3f}",
         f"{result['speedup']:.2f}x"),
    ]
    print(format_table(("scheduler tick", "wall seconds", "speedup"), rows))
    acct = result["tick_accounting"]
    print(f"bit_identical={result['bit_identical']} "
          f"peak_concurrent={result['peak_concurrent_jobs']} "
          f"figure3_pins_ok={result['figure3_pins_ok']}")
    print(f"rank ticks={acct['rank_ticks']} "
          f"elided={acct['rank_ticks_elided']} "
          f"incremental={acct['rank_ticks_incremental']} "
          f"walks reused={acct['walks_reused']} "
          f"recomputed={acct['walks_recomputed']}")
    if "invariants" in result:
        inv = result["invariants"]
        print(f"invariant checks={inv['checks']} "
              f"violations={inv['violations']}")
    print(f"wrote {os.path.normpath(RESULT_PATH)}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="one round per mode; assert bit-identity, "
                             "golden pins and the concurrency floor only "
                             "(no wall-clock threshold, no tracemalloc)")
    parser.add_argument("--validate", action="store_true",
                        help="also run the cell under the invariant checker")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"timing rounds per mode (default {REPEATS})")
    args = parser.parse_args(argv)

    repeats = 1 if args.check else args.repeats
    result = measure(repeats=repeats, validate=args.validate,
                     memory=not args.check)
    if args.check:
        result["mode"] = "check"
    write_result(result)
    print_result(result)

    failures = []
    if not result["bit_identical"]:
        failures.append("tick modes diverged (results not bit-identical)")
    if not result["figure3_pins_ok"]:
        failures.append("Figure-3 golden completion pins drifted")
    if not result["concurrency_ok"]:
        failures.append(f"peak concurrency {result['peak_concurrent_jobs']} "
                        f"below the {MIN_CONCURRENT}-job floor")
    if args.validate and result["invariants"]["violations"]:
        failures.append(f"{result['invariants']['violations']} invariant "
                        "violations")
    if not args.check and not result["meets_target"]:
        failures.append(f"speedup {result['speedup']:.2f}x below the "
                        f"{TARGET_SPEEDUP:.1f}x target")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_scheduler_tick_speedup(benchmark):
    """Pytest-benchmark wrapper: identity is asserted, wall-clock loosely.

    The committed JSON's >= 1.5x claim comes from a dedicated full run of
    ``main()``; under pytest (possibly on a noisy shared runner) only a
    loose floor is enforced so the suite cannot flake on machine noise.
    """
    from conftest import print_block, run_once

    result = run_once(benchmark, measure, 2, False, False)
    write_result(result)
    print_block(
        f"Scheduler-tick speedup on the {BENCHMARK}/{SCHEDULER} cell "
        f"({result['num_jobs']} jobs, best of {result['repeats']})",
        format_table(("scheduler tick", "wall seconds", "speedup"), [
            ("seed tick", f"{result['seed_seconds']:.3f}", "1.00x"),
            ("epoch-gated tick", f"{result['gated_seconds']:.3f}",
             f"{result['speedup']:.2f}x"),
        ]))
    assert result["bit_identical"]
    assert result["figure3_pins_ok"]
    assert result["concurrency_ok"]
    assert result["speedup"] > 1.1


if __name__ == "__main__":
    sys.exit(main())
