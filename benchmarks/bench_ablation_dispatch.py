"""Ablation: greedy-occupancy vs full-rate-only WG dispatch.

Contemporary WG schedulers fill occupancy greedily (Section 2.1): WGs
keep issuing while any thread/register/LDS/wavefront resources remain,
even once residents slow each other down.  Under overload this is what
drowns the deadline-blind schedulers — everything shares, everything
misses.  This ablation swaps in a conservative WG scheduler that only
issues into full-rate slots and asks two questions:

* how much of the baselines' collapse is self-inflicted by greedy
  occupancy (RR improves markedly with conservative issue — it becomes
  FIFO-of-full-rate-batches), and
* how much of LAX's advantage survives when the dispatcher already
  protects per-WG latency (LAX still wins: admission and laxity ordering
  act on *which jobs* run, not just how many WGs share).
"""

from __future__ import annotations

import dataclasses

from conftest import print_block, run_once

from repro.config import GPUConfig, SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.workloads.registry import build_workload

BENCHES = ("IPV6", "STEM", "LSTM")
SCHEDULERS = ("RR", "EDF", "LAX")


def run_cellpair(name: str, scheduler: str, num_jobs: int, greedy: bool):
    gpu = dataclasses.replace(GPUConfig(), greedy_occupancy=greedy)
    config = SimConfig(gpu=gpu)
    jobs = build_workload(name, "high", num_jobs=num_jobs, seed=1,
                          gpu=config.gpu)
    system = GPUSystem(make_scheduler(scheduler), config)
    system.submit_workload(jobs)
    return system.run()


def test_ablation_dispatch_discipline(benchmark, num_jobs):
    count = min(num_jobs, 96)

    def sweep():
        results = {}
        for name in BENCHES:
            results[name] = {
                scheduler: {
                    "greedy": run_cellpair(name, scheduler, count, True),
                    "conservative": run_cellpair(name, scheduler, count,
                                                 False),
                }
                for scheduler in SCHEDULERS
            }
        return results

    results = run_once(benchmark, sweep)
    rows = []
    for name in BENCHES:
        for scheduler in SCHEDULERS:
            cell = results[name][scheduler]
            rows.append((name, scheduler,
                         cell["greedy"].jobs_meeting_deadline,
                         cell["conservative"].jobs_meeting_deadline))
        rows.append(("", "", "", ""))
    print_block(
        "Ablation: WG dispatch discipline (jobs meeting deadline, "
        f"{count} jobs, high rate)",
        format_table(("benchmark", "scheduler", "greedy occupancy",
                      "full-rate only"), rows))
    for name in BENCHES:
        cell = results[name]
        # Conservative issue rescues the deadline-blind baseline...
        assert (cell["RR"]["conservative"].jobs_meeting_deadline
                >= cell["RR"]["greedy"].jobs_meeting_deadline), name
        # ...but LAX still matches or beats RR under either discipline.
        for mode in ("greedy", "conservative"):
            assert (cell["LAX"][mode].jobs_meeting_deadline
                    >= cell["RR"][mode].jobs_meeting_deadline), (name, mode)
