"""Sweep engine: parallel speedup and serial/parallel bit-identity.

Runs the same multi-cell sweep serially (``workers=1``) and across a
process pool (``workers = cpu count``, capped), with the persistent
cache disabled so both modes pay for every cell, and writes the
comparison to ``BENCH_sweep_parallel.json`` at the repository root.
Two properties are on trial:

* **determinism** — the parallel outcome's JSON records must be
  byte-identical to the serial outcome's (hard assertion, any core
  count: losing this silently would invalidate every parallel sweep);
* **speedup** — with >= 4 cores the pool should cut wall clock by
  >= 2x.  On smaller machines (CI runners, laptops on battery) the
  measured speedup is recorded but not asserted, and on a single core
  no speedup is reported at all (``skip_reason`` documents why): a
  1-core container cannot demonstrate parallelism, only fail to.
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_block, run_once

from repro.harness import RunOptions, Runner, SweepSpec
from repro.harness.formatting import format_table

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_sweep_parallel.json")
#: Cores needed before the 2x-speedup assertion is armed.
MIN_CPUS_FOR_ASSERT = 4
TARGET_SPEEDUP = 2.0


def _sweep(num_jobs: int) -> SweepSpec:
    return SweepSpec(benchmarks=("LSTM", "IPV6"),
                     schedulers=("LAX", "RR", "PREMA"),
                     rate_levels=("high",), seeds=(1, 2),
                     num_jobs=min(num_jobs, 64))


def measure_sweep(num_jobs: int) -> dict:
    sweep = _sweep(num_jobs)
    cpus = os.cpu_count() or 1
    # Never more workers than cores: oversubscribing a small host makes
    # the pool *slower* than serial and the recorded "speedup" misleading.
    pool_workers = min(cpus, len(sweep))
    skip_reason = None
    if pool_workers < 2:
        # The pool path is still exercised (two workers) so the serial /
        # parallel bit-identity assertion keeps its teeth, but the timing
        # comparison is meaningless on one core and is not reported as a
        # speedup.
        skip_reason = (f"{cpus} CPU core(s): a process pool cannot "
                       "demonstrate parallel speedup on this host")
        pool_workers = 2

    start = time.perf_counter()
    parallel = Runner(workers=pool_workers, cache=False).run(
        sweep, RunOptions())
    parallel_seconds = time.perf_counter() - start

    start = time.perf_counter()
    serial = Runner(workers=1, cache=False).run(sweep, RunOptions())
    serial_seconds = time.perf_counter() - start

    assert serial.ok and parallel.ok
    serial_json = json.dumps(serial.records(), sort_keys=True)
    parallel_json = json.dumps(parallel.records(), sort_keys=True)
    assert serial_json == parallel_json, \
        "parallel sweep records diverged from serial"

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    return {
        "sweep": sweep.describe(),
        "cells": len(sweep),
        "num_jobs": sweep.num_jobs,
        "cpus": cpus,
        "pool_workers": pool_workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": None if skip_reason else speedup,
        "skip_reason": skip_reason,
        "bit_identical": True,
        "target_speedup": TARGET_SPEEDUP,
        "speedup_asserted": skip_reason is None
                            and cpus >= MIN_CPUS_FOR_ASSERT,
    }


def test_sweep_parallel_speedup(benchmark, num_jobs):
    result = run_once(benchmark, measure_sweep, num_jobs)
    with open(RESULT_PATH, "w", encoding="utf-8") as sink:
        json.dump(result, sink, indent=2)
        sink.write("\n")
    speedup = ("n/a" if result["speedup"] is None
               else f"{result['speedup']:.2f}x")
    rows = [
        ("serial (workers=1)", f"{result['serial_seconds']:.3f}", "1.00x"),
        (f"pool (workers={result['pool_workers']})",
         f"{result['parallel_seconds']:.3f}", speedup),
    ]
    print_block(
        f"Parallel sweep on {result['cells']} cells "
        f"({result['cpus']} CPU core(s); bit-identical: "
        f"{result['bit_identical']})",
        format_table(("mode", "wall seconds", "speedup"), rows))
    if result["skip_reason"]:
        print(f"speedup not reported: {result['skip_reason']}")
    print(f"wrote {os.path.normpath(RESULT_PATH)}")

    if result["speedup_asserted"]:
        assert result["speedup"] >= TARGET_SPEEDUP
