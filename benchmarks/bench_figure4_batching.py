"""Figure 4: response time of batching vs streams under realistic arrivals.

The paper measures each application's mean response time when requests are
batched (batch sizes up to 128, each batch waiting for its members to
arrive) and when each request runs on its own stream, all normalised to
batch size 1.  Large batches are 20-293x slower than single-request
batches because members wait for the batch to fill; streams cut the
normalised runtime back down.

The bench reproduces the series per benchmark: merged batch-B workloads
run under the deadline-blind RR device baseline (matching the paper's
"all streams use the same static priority" setup).
"""

from __future__ import annotations

import statistics

from conftest import print_block, run_once

from repro.config import SimConfig
from repro.harness.formatting import format_table
from repro.metrics.percentile import safe_ratio
from repro.schedulers.rr import RoundRobinScheduler
from repro.sim.device import GPUSystem
from repro.workloads.batching import member_response_times, merge_into_batches
from repro.workloads.registry import BENCHMARK_ORDER, build_workload

BATCH_SIZES = (1, 8, 32, 128)


def mean_response(jobs, batch_size):
    config = SimConfig()
    merged, members = merge_into_batches(jobs, batch_size)
    system = GPUSystem(RoundRobinScheduler(), config)
    system.submit_workload(merged)
    metrics = system.run()
    responses = member_response_times(metrics, members)
    return statistics.mean(responses) if responses else float("inf")


def mean_streams_response(jobs):
    config = SimConfig()
    system = GPUSystem(RoundRobinScheduler(), config)
    system.submit_workload(jobs)
    metrics = system.run()
    latencies = metrics.completed_latencies()
    return statistics.mean(latencies) if latencies else float("inf")


def sweep(num_jobs: int, seed: int = 1):
    results = {}
    for name in BENCHMARK_ORDER:
        config = SimConfig()
        # Low rate: the batching tradeoff, not overload, is under study.
        jobs = build_workload(name, "low", num_jobs=num_jobs, seed=seed,
                              gpu=config.gpu)
        base = mean_response(jobs, batch_size=1)
        series = {f"B={size}": safe_ratio(mean_response(jobs, size), base)
                  for size in BATCH_SIZES}
        series["streams"] = safe_ratio(mean_streams_response(jobs), base)
        results[name] = series
    return results


def test_figure4_batching_vs_streams(benchmark, num_jobs):
    count = min(num_jobs, 128)
    results = run_once(benchmark, sweep, count)
    columns = [f"B={size}" for size in BATCH_SIZES] + ["streams"]
    table = format_table(
        ("benchmark", *columns),
        [(name, *(f"{results[name][c]:.2f}" for c in columns))
         for name in BENCHMARK_ORDER])
    print_block(
        "Figure 4: mean response time vs batch size, normalised to B=1\n"
        "(paper: large batches 20-293x slower; streams stay near 1x)",
        table)
    for name, series in results.items():
        # Shape: batching costs grow with batch size...
        assert series["B=128"] > series["B=1"] >= 0.99, name
        assert series["B=128"] > 5, name
        # ...while streams stay far below the large-batch cost.
        assert series["streams"] < series["B=128"], name
