"""Figure 6: jobs completed by deadline — CPU-side schedulers vs LAX.

Panels (a)/(b)/(c) plot, per benchmark and arrival rate, the number of
jobs completed by their deadlines under RR, BAT, BAY, PRO and LAX,
normalised to RR.  Headline geomeans (Section 6.1.1): LAX completes 1.7x /
3.1x / 4.2x more jobs than RR at the low / medium / high rates, BAT lands
below RR, BAY about even with RR (its IPV6 zero cancelling its wins), and
PRO barely above RR.
"""

from __future__ import annotations

from conftest import print_block, run_once

from repro.harness.formatting import format_table
from repro.harness.paper_expected import PAPER_GEOMEAN_CLAIMS
from repro.harness.summary import (geomean_over_benchmarks, grid_results,
                                   normalized_deadline_grid)
from repro.workloads.registry import BENCHMARK_ORDER, RATE_LEVELS

SCHEDULERS = ("RR", "BAT", "BAY", "PRO", "LAX")


def run_panel(rate_level: str, num_jobs: int):
    grid = grid_results(BENCHMARK_ORDER, SCHEDULERS, rate_level=rate_level,
                        num_jobs=num_jobs)
    return grid, normalized_deadline_grid(grid, baseline="RR")


def _print_panel(rate_level, grid, normalized):
    rows = []
    for name in BENCHMARK_ORDER:
        counts = {s: grid[name][s].metrics.jobs_meeting_deadline
                  for s in SCHEDULERS}
        rows.append((name, *(f"{counts[s]} ({normalized[name][s]:.2f}x)"
                             for s in SCHEDULERS)))
    geomeans = {s: geomean_over_benchmarks(normalized, s) for s in SCHEDULERS}
    rows.append(("GEOMEAN", *(f"{geomeans[s]:.2f}x" for s in SCHEDULERS)))
    table = format_table(("benchmark", *SCHEDULERS), rows)
    print_block(
        f"Figure 6({rate_level}): jobs completed by deadline, "
        "normalised to RR", table)
    return geomeans


def test_figure6_high_arrival_rate(benchmark, num_jobs):
    grid, normalized = run_once(benchmark, run_panel, "high", num_jobs)
    geomeans = _print_panel("high", grid, normalized)
    paper = PAPER_GEOMEAN_CLAIMS
    print(f"paper: LAX {paper['LAX_vs_RR_high']}x, "
          f"BAT {paper['BAT_vs_RR_high']}x, BAY {paper['BAY_vs_RR_high']}x, "
          f"PRO {paper['PRO_vs_RR_high']}x vs RR")
    # Shape assertions: LAX dominates at high contention; the deadline-
    # blind batcher trails RR.
    assert geomeans["LAX"] > 1.5
    assert geomeans["LAX"] == max(geomeans.values())
    assert geomeans["BAT"] < 1.0


def test_figure6_medium_arrival_rate(benchmark, num_jobs):
    grid, normalized = run_once(benchmark, run_panel, "medium", num_jobs)
    geomeans = _print_panel("medium", grid, normalized)
    assert geomeans["LAX"] >= 1.2
    assert geomeans["LAX"] == max(geomeans.values())


def test_figure6_low_arrival_rate(benchmark, num_jobs):
    grid, normalized = run_once(benchmark, run_panel, "low", num_jobs)
    geomeans = _print_panel("low", grid, normalized)
    # At low contention most schedulers do fine; LAX still leads.
    assert geomeans["LAX"] >= 1.0
    assert geomeans["LAX"] == max(geomeans.values())


def test_figure6_bay_dies_on_ipv6(benchmark, num_jobs):
    def bay_ipv6():
        grid, _ = run_panel("high", num_jobs)
        return grid["IPV6"]["BAY"].metrics

    metrics = run_once(benchmark, bay_ipv6)
    # Section 6.1.1: BAY's 50us prediction overhead prevents it from
    # completing any IPV6 job by its 40us deadline.
    assert metrics.jobs_meeting_deadline == 0
