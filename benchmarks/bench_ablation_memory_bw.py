"""Ablation: scheduling under an explicit memory-bandwidth cap.

The default substrate folds each kernel's achieved bandwidth into its
Table 1-calibrated service time.  This ablation turns on the explicit
bandwidth model (per-CU slices of a device-wide cap, with WG traffic
annotations) for a synthetic memory-heavy streaming workload, and checks
the property that makes LAX robust to modelling details: its completion-
rate counters measure whatever throughput the throttled device actually
delivers, so admission adapts without any bandwidth-specific logic.
"""

from __future__ import annotations

import dataclasses

from conftest import print_block, run_once

from repro.config import GPUConfig, SimConfig
from repro.harness.formatting import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.device import GPUSystem
from repro.sim.job import Job
from repro.sim.kernel import KernelDescriptor
from repro.units import MS, US
from repro.workloads.arrivals import uniform_arrivals

#: Streaming kernel: 8 WGs, 500 us each, 2 MB of traffic per WG
#: (4.2 B/ns per WG at full rate; 8 concurrent WGs want 33 B/ns).
STREAM_KERNEL = KernelDescriptor(
    name="ablation.Stream", num_wgs=8, threads_per_wg=256,
    wg_work=500 * US, bytes_per_wg=2_000_000, cu_concurrency=8)


def build_jobs(num_jobs: int):
    arrivals = uniform_arrivals(num_jobs, 150 * US)
    return [Job(job_id=i, benchmark="STREAM", descriptors=[STREAM_KERNEL],
                arrival=arrivals[i], deadline=3 * MS)
            for i in range(num_jobs)]


def run_with_bandwidth(scheduler: str, num_jobs: int, bw: float):
    gpu = dataclasses.replace(GPUConfig(), memory_bw_bytes_per_ns=bw)
    system = GPUSystem(make_scheduler(scheduler), SimConfig(gpu=gpu))
    system.submit_workload(build_jobs(num_jobs))
    return system.run()


def test_ablation_memory_bandwidth(benchmark, num_jobs):
    count = min(num_jobs, 64)
    sweep_points = (0.0, 64.0, 16.0)  # off, roomy, starved (bytes/ns)

    def sweep():
        results = {}
        for bw in sweep_points:
            results[bw] = {s: run_with_bandwidth(s, count, bw)
                           for s in ("RR", "LAX")}
        return results

    results = run_once(benchmark, sweep)
    rows = []
    for bw in sweep_points:
        label = "off" if bw == 0 else f"{bw:.0f} B/ns"
        rr = results[bw]["RR"]
        lax = results[bw]["LAX"]
        rows.append((label, rr.jobs_meeting_deadline,
                     lax.jobs_meeting_deadline, lax.jobs_rejected))
    print_block(
        "Ablation: memory-bandwidth cap on a streaming workload\n"
        "(LAX's rate counters absorb the throttling automatically)",
        format_table(("bandwidth", "RR met", "LAX met", "LAX rejected"),
                     rows))
    # Tighter bandwidth shrinks what anyone can serve...
    assert (results[16.0]["LAX"].jobs_meeting_deadline
            <= results[0.0]["LAX"].jobs_meeting_deadline)
    # ...but LAX keeps meeting deadlines for what it accepts and sheds
    # the rest, staying ahead of RR at every point.
    for bw in sweep_points:
        assert (results[bw]["LAX"].jobs_meeting_deadline
                >= results[bw]["RR"].jobs_meeting_deadline), bw
    assert results[16.0]["LAX"].jobs_rejected > results[0.0][
        "LAX"].jobs_rejected